"""Unit tests for the selection functions f ∈ F."""

from __future__ import annotations

import pytest

from repro.core.block import GENESIS_ID, Block
from repro.core.blocktree import BlockTree
from repro.core.selection import (
    FixedTipSelection,
    GHOSTSelection,
    HeaviestChain,
    LongestChain,
    ScoreMaximizingSelection,
)
from repro.core.score import WeightScore


class TestLongestChain:
    def test_selects_longest_branch(self, forked_tree):
        assert LongestChain()(forked_tree).tip.block_id == "a3"

    def test_genesis_only_tree_returns_genesis_chain(self):
        chain = LongestChain()(BlockTree())
        assert chain.ids == (GENESIS_ID,)

    def test_lexicographic_tiebreak(self):
        tree = BlockTree()
        tree.append(Block("aaa", GENESIS_ID))
        tree.append(Block("zzz", GENESIS_ID))
        assert LongestChain()(tree).tip.block_id == "zzz"

    def test_result_is_a_path_of_the_tree(self, forked_tree):
        chain = LongestChain()(forked_tree)
        for parent, child in zip(chain.blocks, chain.blocks[1:]):
            assert child.parent_id == parent.block_id


class TestHeaviestChain:
    def test_prefers_heavier_shorter_branch(self):
        tree = BlockTree()
        tree.append(Block("light1", GENESIS_ID, weight=1.0))
        tree.append(Block("light2", "light1", weight=1.0))
        tree.append(Block("heavy", GENESIS_ID, weight=5.0))
        assert HeaviestChain()(tree).tip.block_id == "heavy"

    def test_equals_longest_for_unit_weights(self, forked_tree):
        assert HeaviestChain()(forked_tree).ids == LongestChain()(forked_tree).ids


class TestGHOST:
    def test_follows_heaviest_subtree_not_longest_chain(self):
        # Branch A is longer, but branch B's subtree holds more blocks.
        tree = BlockTree()
        tree.append(Block("a1", GENESIS_ID))
        tree.append(Block("a2", "a1"))
        tree.append(Block("a3", "a2"))
        tree.append(Block("b1", GENESIS_ID))
        for i in range(2, 6):
            tree.append(Block(f"b{i}", "b1"))
        ghost_tip = GHOSTSelection()(tree).tip.block_id
        assert ghost_tip.startswith("b")
        assert LongestChain()(tree).tip.block_id == "a3"

    def test_reduces_to_longest_chain_on_a_path(self, linear_tree):
        assert GHOSTSelection()(linear_tree).ids == LongestChain()(linear_tree).ids

    def test_genesis_only(self):
        assert GHOSTSelection()(BlockTree()).ids == (GENESIS_ID,)

    def test_deterministic_tiebreak(self):
        tree = BlockTree()
        tree.append(Block("aa", GENESIS_ID))
        tree.append(Block("zz", GENESIS_ID))
        assert GHOSTSelection()(tree).tip.block_id == "zz"


class TestScoreMaximizing:
    def test_custom_score_function(self, forked_tree):
        selection = ScoreMaximizingSelection(WeightScore())
        assert selection(forked_tree).tip.block_id == "a3"


class TestFixedTip:
    def test_unpinned_behaves_like_longest_chain(self, forked_tree):
        assert FixedTipSelection()(forked_tree).ids == LongestChain()(forked_tree).ids

    def test_pinned_returns_chain_to_tip(self, forked_tree):
        selection = FixedTipSelection(tip_id="b2")
        assert selection(forked_tree).tip.block_id == "b2"

    def test_pinned_to_missing_tip_falls_back(self, forked_tree):
        selection = FixedTipSelection(tip_id="nope")
        assert selection(forked_tree).tip.block_id == "a3"

    def test_pinned_to_returns_new_instance(self):
        base = FixedTipSelection()
        pinned = base.pinned_to("x")
        assert pinned.tip_id == "x"
        assert base.tip_id is None
