"""Unit tests for the consistency criteria (Definitions 3.2–3.4).

These tests exercise each property checker on handcrafted histories and
verify the paper's verdicts on the figure-level scenarios (Figures 2–4).
"""

from __future__ import annotations

import pytest

from repro.core.block import GENESIS, GENESIS_ID, Block, Blockchain
from repro.core.consistency import (
    BlockValidityChecker,
    BTEventualConsistency,
    BTStrongConsistency,
    EventualPrefixChecker,
    EverGrowingTreeChecker,
    LocalMonotonicReadChecker,
    StrongPrefixChecker,
    check_eventual_consistency,
    check_strong_consistency,
)
from repro.core.history import HistoryRecorder
from repro.workload.scenarios import figure2_history, figure3_history, figure4_history


def _chain(*ids: str) -> Blockchain:
    blocks = [GENESIS]
    parent = GENESIS_ID
    for bid in ids:
        blocks.append(Block(bid, parent))
        parent = bid
    return Blockchain(tuple(blocks))


def _history_with_reads(reads):
    """reads: list of (process, chain); blocks are appended first."""
    rec = HistoryRecorder()
    appended = set()
    for _, chain in reads:
        for block in chain:
            if not block.is_genesis and block.block_id not in appended:
                rec.complete("appender", "append", block, True)
                appended.add(block.block_id)
    for process, chain in reads:
        rec.complete(process, "read", None, chain)
    return rec.history()


class TestBlockValidity:
    def test_holds_when_blocks_were_appended(self):
        history = _history_with_reads([("i", _chain("a", "b"))])
        assert BlockValidityChecker().check(history).holds

    def test_fails_when_block_never_appended(self):
        rec = HistoryRecorder()
        rec.complete("i", "read", None, _chain("ghost"))
        result = BlockValidityChecker().check(rec.history())
        assert not result.holds
        assert "never appended" in result.violations[0]

    def test_fails_when_append_happens_after_read(self):
        rec = HistoryRecorder()
        rec.complete("i", "read", None, _chain("late"))
        rec.complete("i", "append", Block("late", GENESIS_ID), True)
        result = BlockValidityChecker().check(rec.history())
        assert not result.holds
        assert "appended only later" in result.violations[0]

    def test_fails_when_block_is_invalid(self):
        history = _history_with_reads([("i", _chain("bad"))])
        validator = lambda block: block.block_id != "bad"  # noqa: E731
        result = BlockValidityChecker(validator).check(history)
        assert not result.holds

    def test_genesis_is_exempt(self):
        rec = HistoryRecorder()
        rec.complete("i", "read", None, Blockchain.genesis_only())
        assert BlockValidityChecker(lambda b: False).check(rec.history()).holds


class TestLocalMonotonicRead:
    def test_non_decreasing_scores_pass(self):
        history = _history_with_reads([("i", _chain("a")), ("i", _chain("a", "b"))])
        assert LocalMonotonicReadChecker().check(history).holds

    def test_decreasing_scores_fail(self):
        history = _history_with_reads([("i", _chain("a", "b")), ("i", _chain("a"))])
        result = LocalMonotonicReadChecker().check(history)
        assert not result.holds

    def test_only_same_process_pairs_matter(self):
        history = _history_with_reads([("i", _chain("a", "b")), ("j", _chain("a"))])
        assert LocalMonotonicReadChecker().check(history).holds

    def test_equal_scores_allowed(self):
        history = _history_with_reads([("i", _chain("a")), ("i", _chain("a"))])
        assert LocalMonotonicReadChecker().check(history).holds


class TestStrongPrefix:
    def test_prefix_related_reads_pass(self):
        history = _history_with_reads(
            [("i", _chain("a")), ("j", _chain("a", "b")), ("i", _chain("a", "b", "c"))]
        )
        assert StrongPrefixChecker().check(history).holds

    def test_divergent_reads_fail(self):
        history = _history_with_reads([("i", _chain("a")), ("j", _chain("x"))])
        result = StrongPrefixChecker().check(history)
        assert not result.holds
        assert "diverging" in result.violations[0]

    def test_single_read_trivially_holds(self):
        history = _history_with_reads([("i", _chain("a"))])
        assert StrongPrefixChecker().check(history).holds


class TestEverGrowingTree:
    def test_default_is_prefix_tolerant(self):
        history = _history_with_reads([("i", _chain("a")), ("j", _chain("a"))])
        result = EverGrowingTreeChecker().check(history)
        assert result.holds
        assert result.details["stalled_reads"]  # the stall is still reported

    def test_threshold_flags_stalled_growth(self):
        reads = [("i", _chain("a"))] + [("j", _chain("a"))] * 3
        history = _history_with_reads(reads)
        result = EverGrowingTreeChecker(stall_threshold=3).check(history)
        assert not result.holds

    def test_growth_resets_the_stall(self):
        reads = [("i", _chain("a")), ("j", _chain("a")), ("j", _chain("a", "b"))]
        history = _history_with_reads(reads)
        assert EverGrowingTreeChecker(stall_threshold=1).check(history).holds

    def test_no_later_reads_is_fine(self):
        history = _history_with_reads([("i", _chain("a"))])
        assert EverGrowingTreeChecker(stall_threshold=1).check(history).holds


class TestEventualPrefix:
    def test_converging_views_pass(self):
        history = _history_with_reads(
            [
                ("i", _chain("a")),
                ("j", _chain("x")),
                ("i", _chain("x", "y")),
                ("j", _chain("x", "y")),
            ]
        )
        assert EventualPrefixChecker().check(history).holds

    def test_permanently_divergent_views_fail(self):
        history = _history_with_reads(
            [
                ("i", _chain("a", "b")),
                ("j", _chain("x", "y")),
                ("i", _chain("a", "b", "c")),
                ("j", _chain("x", "y", "z")),
            ]
        )
        result = EventualPrefixChecker().check(history)
        assert not result.holds

    def test_all_pairs_mode_is_stricter(self):
        history = _history_with_reads(
            [
                ("i", _chain("a", "b")),
                ("j", _chain("x")),          # transient divergence below score 2
                ("i", _chain("a", "b", "c")),
                ("j", _chain("a", "b", "c")),
            ]
        )
        assert EventualPrefixChecker().check(history).holds
        assert not EventualPrefixChecker(require_all_pairs=True).check(history).holds

    def test_single_process_never_diverges(self):
        history = _history_with_reads([("i", _chain("a")), ("i", _chain("a", "b"))])
        assert EventualPrefixChecker().check(history).holds


class TestCriteriaOnFigures:
    def test_figure2_satisfies_sc_and_ec(self):
        history = figure2_history()
        assert check_strong_consistency(history).holds
        assert check_eventual_consistency(history).holds

    def test_figure3_satisfies_ec_but_not_sc(self):
        history = figure3_history()
        assert not check_strong_consistency(history).holds
        assert check_eventual_consistency(history).holds

    def test_figure4_satisfies_neither(self):
        history = figure4_history()
        assert not check_strong_consistency(history).holds
        assert not check_eventual_consistency(history).holds

    def test_sc_implies_ec_on_figures(self):
        # Theorem 3.1 on the concrete figures.
        for history in (figure2_history(), figure3_history(), figure4_history()):
            if check_strong_consistency(history).holds:
                assert check_eventual_consistency(history).holds


class TestReports:
    def test_report_exposes_individual_results(self):
        report = check_strong_consistency(figure2_history())
        assert report.result_for("strong-prefix").holds
        with pytest.raises(KeyError):
            report.result_for("unknown-property")

    def test_report_describe_mentions_status(self):
        report = check_strong_consistency(figure3_history())
        text = report.describe()
        assert "NOT SATISFIED" in text
        assert "strong-prefix" in text

    def test_bool_conversion(self):
        assert bool(check_strong_consistency(figure2_history()))
        assert not bool(check_strong_consistency(figure4_history()))

    def test_criteria_objects_are_reusable(self):
        strong = BTStrongConsistency()
        eventual = BTEventualConsistency()
        assert strong.check(figure2_history()).holds
        assert eventual.check(figure3_history()).holds
        assert not eventual.check(figure4_history()).holds
