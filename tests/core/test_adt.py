"""Unit tests for the generic ADT machinery (Definitions 2.1–2.3)."""

from __future__ import annotations

import pytest

from repro.core.adt import (
    AbstractDataType,
    InputSymbol,
    Operation,
    SequentialHistoryError,
    is_sequential_history,
    replay,
)


class CounterADT(AbstractDataType[int]):
    """A tiny ADT used to exercise the framework: an integer counter.

    ``inc`` adds its argument (output: new value), ``get`` outputs the
    current value without changing state.
    """

    def initial_state(self) -> int:
        return 0

    def transition(self, state: int, symbol: InputSymbol) -> int:
        if symbol.name == "inc":
            return state + int(symbol.argument)
        if symbol.name == "get":
            return state
        raise ValueError(symbol.name)

    def output(self, state: int, symbol: InputSymbol):
        if symbol.name == "inc":
            return state + int(symbol.argument)
        if symbol.name == "get":
            return state
        raise ValueError(symbol.name)


class TestOperations:
    def test_invocation_constructor(self):
        op = Operation.invocation("get")
        assert not op.has_output
        assert op.symbol.name == "get"

    def test_with_output_constructor(self):
        op = Operation.with_output("inc", 2, 2)
        assert op.has_output
        assert op.output == 2

    def test_str_forms(self):
        assert "inc(2)/2" in str(Operation.with_output("inc", 2, 2))
        assert str(Operation.invocation("get")) == "get()"


class TestReplay:
    def test_replay_returns_state_sequence(self):
        adt = CounterADT()
        ops = [
            Operation.with_output("inc", 1, 1),
            Operation.with_output("inc", 2, 3),
            Operation.with_output("get", None, 3),
        ]
        states = replay(adt, ops)
        assert states == [0, 1, 3, 3]

    def test_replay_without_outputs_never_fails_on_output(self):
        adt = CounterADT()
        ops = [Operation.invocation("inc", 5), Operation.invocation("get")]
        states = replay(adt, ops)
        assert states[-1] == 5

    def test_replay_rejects_wrong_output(self):
        adt = CounterADT()
        ops = [Operation.with_output("inc", 1, 99)]
        with pytest.raises(SequentialHistoryError) as err:
            replay(adt, ops)
        assert err.value.index == 0

    def test_replay_from_custom_initial_state(self):
        adt = CounterADT()
        states = replay(adt, [Operation.with_output("get", None, 7)], initial_state=7)
        assert states == [7, 7]

    def test_transition_operation_ignores_output_component(self):
        adt = CounterADT()
        op = Operation.with_output("inc", 3, 3)
        assert adt.transition_operation(0, op) == 3

    def test_step_returns_state_and_output(self):
        adt = CounterADT()
        state, output = adt.step(1, Operation.invocation("inc", 4))
        assert (state, output) == (5, 5)


class TestMembership:
    def test_valid_word_is_in_language(self):
        adt = CounterADT()
        ops = [Operation.with_output("inc", 1, 1), Operation.with_output("get", None, 1)]
        assert is_sequential_history(adt, ops)

    def test_invalid_word_is_rejected(self):
        adt = CounterADT()
        ops = [Operation.with_output("get", None, 42)]
        assert not is_sequential_history(adt, ops)

    def test_empty_word_is_in_language(self):
        assert is_sequential_history(CounterADT(), [])
