"""Unit tests for validity predicates P."""

from __future__ import annotations

import pytest

from repro.core.block import GENESIS, GENESIS_ID, Block
from repro.core.blocktree import BlockTree
from repro.core.validity import (
    AlwaysValid,
    CompositeValidity,
    MembershipValidity,
    NeverValid,
    NoDoubleSpend,
    ParentInTree,
    PredicateFromCallable,
    TokenRequired,
    bitcoin_validity,
)


@pytest.fixture()
def tree_with_spends() -> BlockTree:
    tree = BlockTree()
    tree.append(Block("s1", GENESIS_ID, payload=("coin1", "coin2")))
    tree.append(Block("s2", "s1", payload=("coin3",)))
    tree.append(Block("other", GENESIS_ID, payload=("coin9",)))
    return tree


class TestBasicPredicates:
    def test_always_valid(self, linear_tree):
        assert AlwaysValid()(Block("z", GENESIS_ID), linear_tree)

    def test_never_valid_rejects_non_genesis(self, linear_tree):
        assert not NeverValid()(Block("z", GENESIS_ID), linear_tree)
        assert NeverValid()(GENESIS, linear_tree)

    def test_parent_in_tree(self, linear_tree):
        assert ParentInTree()(Block("z", "x3"), linear_tree)
        assert not ParentInTree()(Block("z", "missing"), linear_tree)
        assert ParentInTree()(GENESIS, linear_tree)

    def test_membership_validity(self, linear_tree):
        predicate = MembershipValidity.of(["good"])
        assert predicate(Block("good", GENESIS_ID), linear_tree)
        assert not predicate(Block("bad", GENESIS_ID), linear_tree)
        assert predicate(GENESIS, linear_tree)

    def test_token_required(self, linear_tree):
        assert not TokenRequired()(Block("z", GENESIS_ID), linear_tree)
        assert TokenRequired()(Block("z", GENESIS_ID, token="tkn_b0"), linear_tree)

    def test_predicate_from_callable(self, linear_tree):
        predicate = PredicateFromCallable(lambda b, t: b.block_id != "evil", name="no-evil")
        assert predicate(Block("fine", GENESIS_ID), linear_tree)
        assert not predicate(Block("evil", GENESIS_ID), linear_tree)


class TestNoDoubleSpend:
    def test_fresh_spend_is_valid(self, tree_with_spends):
        block = Block("new", "s2", payload=("coin4",))
        assert NoDoubleSpend()(block, tree_with_spends)

    def test_respend_on_same_branch_is_invalid(self, tree_with_spends):
        block = Block("bad", "s2", payload=("coin1",))
        assert not NoDoubleSpend()(block, tree_with_spends)

    def test_respend_on_other_branch_is_allowed(self, tree_with_spends):
        # coin1 was spent on the s1 branch; spending it on the 'other' branch
        # is tolerated (forks may double spend across branches).
        block = Block("crossfork", "other", payload=("coin1",))
        assert NoDoubleSpend()(block, tree_with_spends)

    def test_empty_payload_is_valid(self, tree_with_spends):
        assert NoDoubleSpend()(Block("empty", "s2"), tree_with_spends)

    def test_unknown_parent_defers(self, tree_with_spends):
        block = Block("floating", "unknown", payload=("coin1",))
        assert NoDoubleSpend()(block, tree_with_spends)


class TestComposite:
    def test_conjunction_requires_all(self, linear_tree):
        predicate = CompositeValidity.of(ParentInTree(), MembershipValidity.of(["ok"]))
        assert predicate(Block("ok", "x3"), linear_tree)
        assert not predicate(Block("ok", "missing"), linear_tree)
        assert not predicate(Block("nope", "x3"), linear_tree)

    def test_empty_composite_accepts_everything(self, linear_tree):
        assert CompositeValidity()(Block("any", GENESIS_ID), linear_tree)

    def test_bitcoin_validity_combines_structure_and_spends(self, tree_with_spends):
        predicate = bitcoin_validity()
        assert predicate(Block("fine", "s2", payload=("coinX",)), tree_with_spends)
        assert not predicate(Block("orphan", "missing", payload=("coinX",)), tree_with_spends)
        assert not predicate(Block("dspend", "s2", payload=("coin2",)), tree_with_spends)
