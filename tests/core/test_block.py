"""Unit tests for blocks and blockchains."""

from __future__ import annotations

import pytest

from repro.core.block import (
    GENESIS,
    GENESIS_ID,
    Block,
    BlockIdFactory,
    Blockchain,
    chains_consistent,
    genesis_block,
)


class TestBlock:
    def test_genesis_has_no_parent(self):
        assert GENESIS.parent_id is None
        assert GENESIS.is_genesis

    def test_genesis_block_factory_is_valid_and_weightless(self):
        g = genesis_block()
        assert g.block_id == GENESIS_ID
        assert g.weight == 0.0

    def test_non_genesis_requires_parent(self):
        with pytest.raises(ValueError):
            Block("b1", None)

    def test_block_cannot_be_its_own_parent(self):
        with pytest.raises(ValueError):
            Block("b1", "b1")

    def test_block_id_must_be_nonempty_string(self):
        with pytest.raises(ValueError):
            Block("", GENESIS_ID)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Block("b1", GENESIS_ID, weight=-1.0)

    def test_with_parent_returns_reparented_copy(self):
        block = Block("b1", GENESIS_ID)
        moved = block.with_parent("x")
        assert moved.parent_id == "x"
        assert block.parent_id == GENESIS_ID  # original unchanged

    def test_with_token_stamps_token(self):
        block = Block("b1", GENESIS_ID)
        stamped = block.with_token("tkn_b0")
        assert stamped.token == "tkn_b0"
        assert block.token is None

    def test_blocks_are_hashable_and_equal_by_value(self):
        a = Block("b1", GENESIS_ID)
        b = Block("b1", GENESIS_ID)
        assert a == b
        assert hash(a) == hash(b)


class TestBlockIdFactory:
    def test_ids_are_unique_and_sequential(self):
        factory = BlockIdFactory()
        assert factory() == "b1"
        assert factory() == "b2"

    def test_prefix_is_respected(self):
        factory = BlockIdFactory(prefix="node_")
        assert factory().startswith("node_")

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            BlockIdFactory(prefix="")

    def test_make_block_links_parent_and_metadata(self):
        factory = BlockIdFactory()
        block = factory.make_block(GENESIS_ID, creator="p1", weight=2.0, round=3)
        assert block.parent_id == GENESIS_ID
        assert block.creator == "p1"
        assert block.weight == 2.0
        assert block.round == 3


class TestBlockchain:
    def test_must_start_at_genesis(self):
        with pytest.raises(ValueError):
            Blockchain((Block("b1", GENESIS_ID),))

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            Blockchain(())

    def test_broken_link_rejected(self):
        b1 = Block("b1", GENESIS_ID)
        b3 = Block("b3", "b2")
        with pytest.raises(ValueError):
            Blockchain((GENESIS, b1, b3))

    def test_genesis_only_chain(self):
        chain = Blockchain.genesis_only()
        assert chain.length == 0
        assert chain.tip == GENESIS

    def test_length_excludes_genesis(self, chain_factory):
        assert chain_factory("a", "b", "c").length == 3

    def test_ids_are_root_first(self, chain_factory):
        assert chain_factory("a", "b").ids == (GENESIS_ID, "a", "b")

    def test_extend_appends_to_tip(self, chain_factory):
        chain = chain_factory("a")
        extended = chain.extend(Block("b", "a"))
        assert extended.ids == (GENESIS_ID, "a", "b")
        assert chain.length == 1  # original untouched

    def test_extend_rejects_wrong_parent(self, chain_factory):
        chain = chain_factory("a")
        with pytest.raises(ValueError):
            chain.extend(Block("b", GENESIS_ID))

    def test_prefix_and_bounds(self, chain_factory):
        chain = chain_factory("a", "b", "c")
        assert chain.prefix(2).ids == (GENESIS_ID, "a", "b")
        assert chain.prefix(0).ids == (GENESIS_ID,)
        with pytest.raises(ValueError):
            chain.prefix(4)
        with pytest.raises(ValueError):
            chain.prefix(-1)

    def test_is_prefix_of(self, chain_factory):
        short = chain_factory("a", "b")
        long = chain_factory("a", "b", "c")
        other = chain_factory("a", "x")
        assert short.is_prefix_of(long)
        assert not long.is_prefix_of(short)
        assert short.is_prefix_of(short)
        assert not other.is_prefix_of(long)

    def test_common_prefix(self, chain_factory):
        a = chain_factory("a", "b", "c")
        b = chain_factory("a", "b", "x", "y")
        assert a.common_prefix(b).ids == (GENESIS_ID, "a", "b")
        assert a.common_prefix(a).ids == a.ids

    def test_common_prefix_with_divergence_at_genesis(self, chain_factory):
        a = chain_factory("a")
        b = chain_factory("x")
        assert a.common_prefix(b).ids == (GENESIS_ID,)

    def test_diverges_from(self, chain_factory):
        a = chain_factory("a", "b")
        b = chain_factory("a", "x")
        c = chain_factory("a", "b", "c")
        assert a.diverges_from(b)
        assert not a.diverges_from(c)

    def test_contains_block_and_id(self, chain_factory):
        chain = chain_factory("a", "b")
        assert "a" in chain
        assert Block("a", GENESIS_ID) in chain
        assert "missing" not in chain
        assert 42 not in chain

    def test_total_weight(self):
        b1 = Block("a", GENESIS_ID, weight=2.0)
        b2 = Block("b", "a", weight=3.0)
        chain = Blockchain((GENESIS, b1, b2))
        assert chain.total_weight == pytest.approx(5.0)

    def test_iteration_and_indexing(self, chain_factory):
        chain = chain_factory("a", "b")
        assert [b.block_id for b in chain] == [GENESIS_ID, "a", "b"]
        assert chain[1].block_id == "a"
        assert len(chain) == 3


class TestChainsConsistent:
    def test_prefix_family_is_consistent(self, chain_factory):
        chains = [chain_factory(*["a", "b", "c"][:i]) for i in range(4)]
        assert chains_consistent(chains)

    def test_divergent_family_is_not_consistent(self, chain_factory):
        assert not chains_consistent([chain_factory("a"), chain_factory("x")])

    def test_single_and_empty_families(self, chain_factory):
        assert chains_consistent([])
        assert chains_consistent([chain_factory("a")])
