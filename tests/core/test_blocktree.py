"""Unit tests for the BlockTree structure."""

from __future__ import annotations

import pytest

from repro.core.block import GENESIS, GENESIS_ID, Block
from repro.core.blocktree import BlockTree, DuplicateBlockError, UnknownParentError


class TestConstruction:
    def test_new_tree_contains_only_genesis(self):
        tree = BlockTree()
        assert len(tree) == 1
        assert GENESIS_ID in tree
        assert tree.height == 0

    def test_tree_rejects_non_genesis_root(self):
        with pytest.raises(ValueError):
            BlockTree(Block("b1", GENESIS_ID))


class TestAppend:
    def test_append_under_genesis(self):
        tree = BlockTree()
        tree.append(Block("x", GENESIS_ID))
        assert "x" in tree
        assert tree.height_of("x") == 1

    def test_append_requires_known_parent(self):
        tree = BlockTree()
        with pytest.raises(UnknownParentError):
            tree.append(Block("x", "missing"))

    def test_duplicate_append_rejected(self):
        tree = BlockTree()
        tree.append(Block("x", GENESIS_ID))
        with pytest.raises(DuplicateBlockError):
            tree.append(Block("x", GENESIS_ID))

    def test_second_genesis_rejected(self):
        tree = BlockTree()
        with pytest.raises(ValueError):
            tree.append(Block(GENESIS_ID, None))

    def test_append_returns_block(self):
        tree = BlockTree()
        block = Block("x", GENESIS_ID)
        assert tree.append(block) is block

    def test_contains_accepts_blocks_and_ids(self, linear_tree):
        assert "x1" in linear_tree
        assert Block("x1", GENESIS_ID) in linear_tree


class TestQueries:
    def test_heights_along_chain(self, linear_tree):
        assert linear_tree.height == 3
        assert linear_tree.height_of("x2") == 2

    def test_children_and_parent(self, forked_tree):
        assert set(forked_tree.children_of(GENESIS_ID)) == {"a1", "b1"}
        assert forked_tree.parent_of("a2") == "a1"
        assert forked_tree.parent_of(GENESIS_ID) is None

    def test_leaves(self, forked_tree):
        assert set(forked_tree.leaves()) == {"a3", "b2"}

    def test_chain_to(self, forked_tree):
        chain = forked_tree.chain_to("a3")
        assert chain.ids == (GENESIS_ID, "a1", "a2", "a3")

    def test_chain_to_unknown_raises(self, linear_tree):
        with pytest.raises(KeyError):
            linear_tree.chain_to("missing")

    def test_all_chains_one_per_leaf(self, forked_tree):
        chains = forked_tree.all_chains()
        assert len(chains) == 2
        tips = {c.tip.block_id for c in chains}
        assert tips == {"a3", "b2"}

    def test_ancestors(self, forked_tree):
        assert forked_tree.ancestors("a3") == ("a2", "a1", GENESIS_ID)
        assert forked_tree.ancestors(GENESIS_ID) == ()

    def test_is_ancestor(self, forked_tree):
        assert forked_tree.is_ancestor(GENESIS_ID, "a3")
        assert forked_tree.is_ancestor("a1", "a3")
        assert forked_tree.is_ancestor("a3", "a3")
        assert not forked_tree.is_ancestor("b1", "a3")
        assert not forked_tree.is_ancestor("missing", "a3")

    def test_common_ancestor(self, forked_tree):
        assert forked_tree.common_ancestor("a3", "b2") == GENESIS_ID
        assert forked_tree.common_ancestor("a3", "a1") == "a1"
        assert forked_tree.common_ancestor("a2", "a3") == "a2"

    def test_blocks_at_height(self, forked_tree):
        assert set(forked_tree.blocks_at_height(1)) == {"a1", "b1"}
        assert set(forked_tree.blocks_at_height(3)) == {"a3"}

    def test_fork_points_and_degree(self, forked_tree, linear_tree):
        assert forked_tree.fork_points() == (GENESIS_ID,)
        assert forked_tree.fork_degree(GENESIS_ID) == 2
        assert forked_tree.max_fork_degree() == 2
        assert linear_tree.fork_points() == ()
        assert linear_tree.max_fork_degree() == 1

    def test_subtree_weight_accumulates(self):
        tree = BlockTree()
        tree.append(Block("a", GENESIS_ID, weight=1.0))
        tree.append(Block("b", "a", weight=2.0))
        tree.append(Block("c", GENESIS_ID, weight=5.0))
        assert tree.subtree_weight("a") == pytest.approx(3.0)
        assert tree.subtree_weight(GENESIS_ID) == pytest.approx(8.0)

    def test_block_ids_in_insertion_order(self, linear_tree):
        assert linear_tree.block_ids() == (GENESIS_ID, "x1", "x2", "x3")


class TestCopyAndMerge:
    def test_copy_is_independent(self, linear_tree):
        clone = linear_tree.copy()
        clone.append(Block("extra", "x3"))
        assert "extra" in clone
        assert "extra" not in linear_tree

    def test_merge_inserts_missing_blocks(self, linear_tree):
        other = BlockTree()
        other.append(Block("x1", GENESIS_ID))
        other.append(Block("y1", "x1"))
        inserted = linear_tree.merge(other)
        assert inserted == 1
        assert "y1" in linear_tree

    def test_merge_handles_out_of_order_parents(self):
        target = BlockTree()
        source = BlockTree()
        source.append(Block("p", GENESIS_ID))
        source.append(Block("q", "p"))
        inserted = target.merge(source)
        assert inserted == 2
        assert target.height == 2

    def test_merge_with_missing_ancestor_raises(self):
        target = BlockTree()

        class _FakeTree:
            def __iter__(self):
                return iter([Block("child", "nowhere")])

        with pytest.raises(UnknownParentError):
            target.merge(_FakeTree())  # type: ignore[arg-type]


class TestPresentation:
    def test_ascii_render_mentions_all_blocks(self, forked_tree):
        art = forked_tree.to_ascii()
        for bid in ("a1", "a2", "a3", "b1", "b2", GENESIS_ID):
            assert bid in art

    def test_repr_contains_summary(self, forked_tree):
        text = repr(forked_tree)
        assert "blocks=6" in text
        assert "leaves=2" in text
