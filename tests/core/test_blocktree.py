"""Unit tests for the BlockTree structure."""

from __future__ import annotations

import random

import pytest

from repro.core.block import GENESIS, GENESIS_ID, Block
from repro.core.blocktree import BlockTree, DuplicateBlockError, UnknownParentError


class TestConstruction:
    def test_new_tree_contains_only_genesis(self):
        tree = BlockTree()
        assert len(tree) == 1
        assert GENESIS_ID in tree
        assert tree.height == 0

    def test_tree_rejects_non_genesis_root(self):
        with pytest.raises(ValueError):
            BlockTree(Block("b1", GENESIS_ID))


class TestAppend:
    def test_append_under_genesis(self):
        tree = BlockTree()
        tree.append(Block("x", GENESIS_ID))
        assert "x" in tree
        assert tree.height_of("x") == 1

    def test_append_requires_known_parent(self):
        tree = BlockTree()
        with pytest.raises(UnknownParentError):
            tree.append(Block("x", "missing"))

    def test_duplicate_append_rejected(self):
        tree = BlockTree()
        tree.append(Block("x", GENESIS_ID))
        with pytest.raises(DuplicateBlockError):
            tree.append(Block("x", GENESIS_ID))

    def test_second_genesis_rejected(self):
        tree = BlockTree()
        with pytest.raises(ValueError):
            tree.append(Block(GENESIS_ID, None))

    def test_append_returns_block(self):
        tree = BlockTree()
        block = Block("x", GENESIS_ID)
        assert tree.append(block) is block

    def test_contains_accepts_blocks_and_ids(self, linear_tree):
        assert "x1" in linear_tree
        assert Block("x1", GENESIS_ID) in linear_tree


class TestQueries:
    def test_heights_along_chain(self, linear_tree):
        assert linear_tree.height == 3
        assert linear_tree.height_of("x2") == 2

    def test_children_and_parent(self, forked_tree):
        assert set(forked_tree.children_of(GENESIS_ID)) == {"a1", "b1"}
        assert forked_tree.parent_of("a2") == "a1"
        assert forked_tree.parent_of(GENESIS_ID) is None

    def test_leaves(self, forked_tree):
        assert set(forked_tree.leaves()) == {"a3", "b2"}

    def test_chain_to(self, forked_tree):
        chain = forked_tree.chain_to("a3")
        assert chain.ids == (GENESIS_ID, "a1", "a2", "a3")

    def test_chain_to_unknown_raises(self, linear_tree):
        with pytest.raises(KeyError):
            linear_tree.chain_to("missing")

    def test_all_chains_one_per_leaf(self, forked_tree):
        chains = forked_tree.all_chains()
        assert len(chains) == 2
        tips = {c.tip.block_id for c in chains}
        assert tips == {"a3", "b2"}

    def test_ancestors(self, forked_tree):
        assert forked_tree.ancestors("a3") == ("a2", "a1", GENESIS_ID)
        assert forked_tree.ancestors(GENESIS_ID) == ()

    def test_is_ancestor(self, forked_tree):
        assert forked_tree.is_ancestor(GENESIS_ID, "a3")
        assert forked_tree.is_ancestor("a1", "a3")
        assert forked_tree.is_ancestor("a3", "a3")
        assert not forked_tree.is_ancestor("b1", "a3")
        assert not forked_tree.is_ancestor("missing", "a3")

    def test_common_ancestor(self, forked_tree):
        assert forked_tree.common_ancestor("a3", "b2") == GENESIS_ID
        assert forked_tree.common_ancestor("a3", "a1") == "a1"
        assert forked_tree.common_ancestor("a2", "a3") == "a2"

    def test_blocks_at_height(self, forked_tree):
        assert set(forked_tree.blocks_at_height(1)) == {"a1", "b1"}
        assert set(forked_tree.blocks_at_height(3)) == {"a3"}

    def test_fork_points_and_degree(self, forked_tree, linear_tree):
        assert forked_tree.fork_points() == (GENESIS_ID,)
        assert forked_tree.fork_degree(GENESIS_ID) == 2
        assert forked_tree.max_fork_degree() == 2
        assert linear_tree.fork_points() == ()
        assert linear_tree.max_fork_degree() == 1

    def test_subtree_weight_accumulates(self):
        tree = BlockTree()
        tree.append(Block("a", GENESIS_ID, weight=1.0))
        tree.append(Block("b", "a", weight=2.0))
        tree.append(Block("c", GENESIS_ID, weight=5.0))
        assert tree.subtree_weight("a") == pytest.approx(3.0)
        assert tree.subtree_weight(GENESIS_ID) == pytest.approx(8.0)

    def test_block_ids_in_insertion_order(self, linear_tree):
        assert linear_tree.block_ids() == (GENESIS_ID, "x1", "x2", "x3")


class TestCopyAndMerge:
    def test_copy_is_independent(self, linear_tree):
        clone = linear_tree.copy()
        clone.append(Block("extra", "x3"))
        assert "extra" in clone
        assert "extra" not in linear_tree

    def test_merge_inserts_missing_blocks(self, linear_tree):
        other = BlockTree()
        other.append(Block("x1", GENESIS_ID))
        other.append(Block("y1", "x1"))
        inserted = linear_tree.merge(other)
        assert inserted == 1
        assert "y1" in linear_tree

    def test_merge_handles_out_of_order_parents(self):
        target = BlockTree()
        source = BlockTree()
        source.append(Block("p", GENESIS_ID))
        source.append(Block("q", "p"))
        inserted = target.merge(source)
        assert inserted == 2
        assert target.height == 2

    def test_merge_with_missing_ancestor_raises(self):
        target = BlockTree()

        class _FakeTree:
            def __iter__(self):
                return iter([Block("child", "nowhere")])

        with pytest.raises(UnknownParentError):
            target.merge(_FakeTree())  # type: ignore[arg-type]


class TestPresentation:
    def test_ascii_render_mentions_all_blocks(self, forked_tree):
        art = forked_tree.to_ascii()
        for bid in ("a1", "a2", "a3", "b1", "b2", GENESIS_ID):
            assert bid in art

    def test_repr_contains_summary(self, forked_tree):
        text = repr(forked_tree)
        assert "blocks=6" in text
        assert "leaves=2" in text


class TestIncrementalCaches:
    """height / leaves are maintained by append, not recomputed."""

    @staticmethod
    def _recomputed_height(tree: BlockTree) -> int:
        return max(tree.height_of(bid) for bid in tree.block_ids())

    @staticmethod
    def _recomputed_leaves(tree: BlockTree) -> tuple:
        return tuple(b for b in tree.block_ids() if not tree.children_of(b))

    def test_height_and_leaves_match_recomputation(self, forked_tree):
        assert forked_tree.height == self._recomputed_height(forked_tree)
        assert forked_tree.leaves() == self._recomputed_leaves(forked_tree)

    def test_caches_track_a_growing_fork(self):
        tree = BlockTree()
        tree.append(Block("a1", GENESIS_ID))
        tree.append(Block("b1", GENESIS_ID))
        assert tree.height == 1
        assert tree.leaves() == ("a1", "b1")
        tree.append(Block("a2", "a1"))
        assert tree.height == 2
        assert tree.leaves() == ("b1", "a2")
        assert tree.height == self._recomputed_height(tree)
        assert tree.leaves() == self._recomputed_leaves(tree)

    def test_copy_preserves_caches_independently(self, forked_tree):
        clone = forked_tree.copy()
        assert clone.height == forked_tree.height
        assert clone.leaves() == forked_tree.leaves()
        clone.append(Block("deep", "a3"))
        assert clone.height == forked_tree.height + 1
        assert "deep" in clone.leaves() and "deep" not in forked_tree.leaves()
        assert forked_tree.height == self._recomputed_height(forked_tree)
        assert clone.height == self._recomputed_height(clone)
        assert clone.leaves() == self._recomputed_leaves(clone)

    def test_merge_keeps_caches_consistent(self, linear_tree):
        other = BlockTree()
        other.append(Block("x1", GENESIS_ID))
        other.append(Block("y1", "x1"))
        other.append(Block("y2", "y1"))
        other.append(Block("y3", "y2"))
        linear_tree.merge(other)
        assert linear_tree.height == self._recomputed_height(linear_tree)
        assert linear_tree.leaves() == self._recomputed_leaves(linear_tree)
        assert linear_tree.height == 4  # y-branch is one deeper than x3


class TestScoreIndexes:
    """cumulative weights, the version counter and the selection memo."""

    @staticmethod
    def _recomputed_cum_weight(tree: BlockTree, block_id: str) -> float:
        return sum(b.weight for b in tree.chain_to(block_id) if not b.is_genesis)

    def test_cumulative_weight_matches_chain_sum(self):
        tree = BlockTree()
        tree.append(Block("a", GENESIS_ID, weight=1.5))
        tree.append(Block("b", "a", weight=2.0))
        tree.append(Block("c", GENESIS_ID, weight=0.0))
        for bid in tree.block_ids():
            assert tree.cumulative_weight(bid) == pytest.approx(
                self._recomputed_cum_weight(tree, bid)
            )
        assert tree.cumulative_weight(GENESIS_ID) == 0.0

    def test_cumulative_weight_on_random_trees(self):
        rng = random.Random(5)
        tree = BlockTree()
        ids = [GENESIS_ID]
        for index in range(50):
            parent = rng.choice(ids)
            bid = f"w{index:03d}"
            tree.append(Block(bid, parent, weight=rng.choice((0.0, 0.5, 1.0, 3.0))))
            ids.append(bid)
        for bid in ids:
            assert tree.cumulative_weight(bid) == pytest.approx(
                self._recomputed_cum_weight(tree, bid)
            )

    def test_version_is_monotone_and_bumped_per_append(self):
        tree = BlockTree()
        assert tree.version == 0
        tree.append(Block("a", GENESIS_ID))
        assert tree.version == 1
        with pytest.raises(DuplicateBlockError):
            tree.append(Block("a", GENESIS_ID))
        assert tree.version == 1  # failed appends do not mutate
        tree.append(Block("b", "a"))
        assert tree.version == 2

    def test_merge_maintains_indexes(self, linear_tree):
        other = BlockTree()
        other.append(Block("x1", GENESIS_ID))
        other.append(Block("y1", "x1", weight=4.0))
        before = linear_tree.version
        linear_tree.merge(other)
        assert linear_tree.version == before + 1
        assert linear_tree.cumulative_weight("y1") == pytest.approx(
            self._recomputed_cum_weight(linear_tree, "y1")
        )

    def test_copy_carries_indexes_independently(self, forked_tree):
        clone = forked_tree.copy()
        assert clone.version == forked_tree.version
        clone.append(Block("deep", "a3", weight=2.5))
        assert clone.version == forked_tree.version + 1
        assert clone.cumulative_weight("deep") == pytest.approx(
            self._recomputed_cum_weight(clone, "deep")
        )
        assert "deep" not in forked_tree

    def test_selection_memo_is_version_guarded(self):
        tree = BlockTree()
        tree.append(Block("a", GENESIS_ID))
        tree.cache_selection("probe", "chain-at-v1")
        assert tree.cached_selection("probe") == "chain-at-v1"
        tree.append(Block("b", "a"))
        assert tree.cached_selection("probe") is None  # invalidated by append
        tree.cache_selection("probe", "chain-at-v2")
        assert tree.cached_selection("probe") == "chain-at-v2"

    def test_selection_memo_tolerates_unhashable_keys(self):
        tree = BlockTree()
        unhashable = ["not", "hashable"]
        tree.cache_selection(unhashable, "ignored")  # type: ignore[arg-type]
        assert tree.cached_selection(unhashable) is None  # type: ignore[arg-type]


class TestAncestorWalks:
    """is_ancestor / common_ancestor walk exactly the cached height gap."""

    @staticmethod
    def _brute_is_ancestor(tree: BlockTree, ancestor: str, descendant: str) -> bool:
        if ancestor not in tree or descendant not in tree:
            return False
        return ancestor == descendant or ancestor in tree.ancestors(descendant)

    @staticmethod
    def _brute_common_ancestor(tree: BlockTree, a: str, b: str) -> str:
        line_a = [a, *tree.ancestors(a)]
        line_b = set([b, *tree.ancestors(b)])
        for candidate in line_a:
            if candidate in line_b:
                return candidate
        raise AssertionError("unreachable: genesis is a common ancestor")

    def test_equivalence_on_random_trees(self):
        rng = random.Random(11)
        tree = BlockTree()
        ids = [GENESIS_ID]
        for index in range(40):
            bid = f"r{index:03d}"
            tree.append(Block(bid, rng.choice(ids)))
            ids.append(bid)
        for _ in range(300):
            a, b = rng.choice(ids), rng.choice(ids)
            assert tree.is_ancestor(a, b) == self._brute_is_ancestor(tree, a, b)
            assert tree.common_ancestor(a, b) == self._brute_common_ancestor(tree, a, b)

    def test_missing_blocks_are_never_ancestors(self, forked_tree):
        assert not forked_tree.is_ancestor("missing", "a3")
        assert not forked_tree.is_ancestor("a1", "missing")

    def test_deeper_block_is_never_an_ancestor_of_a_shallower_one(self, forked_tree):
        assert not forked_tree.is_ancestor("a3", "a1")
        assert not forked_tree.is_ancestor("a2", "b1")


class TestMergeFailurePaths:
    def test_merge_with_unreachable_ancestors_raises_and_names_them(self):
        target = BlockTree()

        class _PartialTree:
            """Iterates a child whose ancestor chain is absent."""

            def __iter__(self):
                return iter([Block("orphan", "missing-parent")])

        with pytest.raises(UnknownParentError) as excinfo:
            target.merge(_PartialTree())  # type: ignore[arg-type]
        assert "missing-parent" in str(excinfo.value)

    def test_merge_subset_missing_middle_of_chain_raises(self):
        source = BlockTree()
        source.append(Block("p", GENESIS_ID))
        source.append(Block("q", "p"))
        source.append(Block("r", "q"))

        class _Holey:
            """Presents r (and q's absence) to the merging tree."""

            def __iter__(self):
                return iter([source.get("r")])

        target = BlockTree()
        with pytest.raises(UnknownParentError, match="q"):
            target.merge(_Holey())  # type: ignore[arg-type]

    def test_failed_merge_does_not_corrupt_the_target(self):
        target = BlockTree()
        source = BlockTree()
        source.append(Block("ok", GENESIS_ID))

        class _Mixed:
            def __iter__(self):
                return iter([Block("bad", "nowhere"), source.get("ok")])

        with pytest.raises(UnknownParentError):
            target.merge(_Mixed())  # type: ignore[arg-type]
        # The insertable block landed; caches still agree with a recompute.
        assert "ok" in target
        assert target.height == 1
        assert target.leaves() == ("ok",)


class TestIncrementalForkCaches:
    """fork_points / max_fork_degree / blocks_at_height are maintained by
    ``append`` (and therefore by ``merge`` and ``copy``) instead of full
    scans; these tests pin the caches to a from-scratch recomputation."""

    @staticmethod
    def _recomputed(tree: BlockTree):
        fork_points = {b for b in tree.block_ids() if len(tree.children_of(b)) >= 2}
        max_degree = max(
            (len(tree.children_of(b)) for b in tree.block_ids()), default=0
        )
        by_height = {}
        for b in tree.block_ids():
            by_height.setdefault(tree.height_of(b), set()).add(b)
        return fork_points, max_degree, by_height

    def _assert_caches_consistent(self, tree: BlockTree):
        fork_points, max_degree, by_height = self._recomputed(tree)
        assert set(tree.fork_points()) == fork_points
        assert tree.max_fork_degree() == max_degree
        for height in range(tree.height + 2):
            assert set(tree.blocks_at_height(height)) == by_height.get(height, set())

    def test_random_append_sequence(self):
        rng = random.Random(42)
        tree = BlockTree()
        ids = [GENESIS_ID]
        for i in range(120):
            parent = rng.choice(ids)
            block_id = f"r{i}"
            tree.append(Block(block_id, parent))
            ids.append(block_id)
            if i % 17 == 0:
                self._assert_caches_consistent(tree)
        self._assert_caches_consistent(tree)

    def test_bare_and_linear_degrees(self, linear_tree):
        assert BlockTree().max_fork_degree() == 0
        assert BlockTree().fork_points() == ()
        assert BlockTree().blocks_at_height(0) == (GENESIS_ID,)
        assert linear_tree.max_fork_degree() == 1

    def test_copy_duplicates_the_caches(self, forked_tree):
        clone = forked_tree.copy()
        self._assert_caches_consistent(clone)
        # Divergent appends must not leak between original and clone.
        clone.append(Block("c1", "b2"))
        clone.append(Block("c2", "b2"))  # b2 becomes a fork point in the clone only
        self._assert_caches_consistent(clone)
        self._assert_caches_consistent(forked_tree)
        assert "b2" in clone.fork_points()
        assert "b2" not in forked_tree.fork_points()

    def test_merge_funnels_through_append(self, forked_tree):
        other = BlockTree()
        other.append(Block("a1", GENESIS_ID))
        other.append(Block("m1", "a1"))
        other.append(Block("m2", "a1"))
        inserted = forked_tree.merge(other)
        assert inserted == 2
        self._assert_caches_consistent(forked_tree)
        assert "a1" in forked_tree.fork_points()  # a2 + m1 + m2 under a1
        assert forked_tree.max_fork_degree() == 3

    def test_blocks_at_height_insertion_order(self):
        tree = BlockTree()
        tree.append(Block("h1", GENESIS_ID))
        tree.append(Block("h2", GENESIS_ID))
        tree.append(Block("h3", GENESIS_ID))
        assert tree.blocks_at_height(1) == ("h1", "h2", "h3")
        assert tree.blocks_at_height(9) == ()
