"""Unit tests for the BT-ADT sequential specification (Definition 3.1)."""

from __future__ import annotations

import pytest

from repro.core.adt import Operation, is_sequential_history, replay
from repro.core.block import GENESIS_ID, Block
from repro.core.bt_adt import BTADT, BlockTreeObject
from repro.core.history import HistoryRecorder
from repro.core.selection import LongestChain
from repro.core.validity import MembershipValidity


class TestPureBTADT:
    def test_initial_read_returns_genesis_only(self):
        adt = BTADT()
        state = adt.initial_state()
        chain = adt.output(state, Operation.invocation("read").symbol)
        assert chain.ids == (GENESIS_ID,)

    def test_append_valid_block_outputs_true_and_grows_tree(self):
        adt = BTADT()
        state = adt.initial_state()
        block = Block("x", GENESIS_ID)
        symbol = Operation.invocation("append", block).symbol
        assert adt.output(state, symbol) is True
        new_state = adt.transition(state, symbol)
        assert "x" in new_state.tree
        assert "x" not in state.tree  # original state untouched

    def test_append_invalid_block_outputs_false_and_keeps_state(self):
        adt = BTADT(predicate=MembershipValidity.of(["good"]))
        state = adt.initial_state()
        bad = Block("bad", GENESIS_ID)
        symbol = Operation.invocation("append", bad).symbol
        assert adt.output(state, symbol) is False
        assert len(adt.transition(state, symbol).tree) == 1

    def test_append_attaches_to_selected_chain_not_declared_parent(self):
        # Definition 3.1: the new block extends {b0}⌢f(bt), regardless of the
        # parent the caller wrote into the block.
        adt = BTADT(selection=LongestChain())
        state = adt.initial_state()
        state = adt.transition(state, Operation.invocation("append", Block("x", GENESIS_ID)).symbol)
        stray = Block("y", "unrelated_parent")
        state = adt.transition(state, Operation.invocation("append", stray).symbol)
        assert state.tree.parent_of("y") == "x"

    def test_figure1_path_is_a_sequential_history(self):
        # Figure 1: append(b1)/true, append(b2)/true, reads returning the
        # selected chain, plus a rejected invalid append.
        adt = BTADT(predicate=MembershipValidity.of(["b1", "b2"]))
        b1, b2, b3 = Block("b1", GENESIS_ID), Block("b2", "b1"), Block("b3", GENESIS_ID)
        ops = [
            Operation.with_output("append", b1, True),
            Operation.with_output("read", None, (GENESIS_ID, "b1")),
            Operation.with_output("append", b3, False),
            Operation.with_output("append", b2, True),
            Operation.with_output("read", None, (GENESIS_ID, "b1", "b2")),
        ]
        assert is_sequential_history(adt, ops)

    def test_wrong_read_output_is_not_a_sequential_history(self):
        adt = BTADT()
        ops = [Operation.with_output("read", None, (GENESIS_ID, "ghost"))]
        assert not is_sequential_history(adt, ops)

    def test_unknown_symbol_rejected(self):
        adt = BTADT()
        state = adt.initial_state()
        with pytest.raises(ValueError):
            adt.output(state, Operation.invocation("pop").symbol)
        with pytest.raises(ValueError):
            adt.transition(state, Operation.invocation("pop").symbol)

    def test_append_requires_block_argument(self):
        adt = BTADT()
        state = adt.initial_state()
        with pytest.raises(TypeError):
            adt.output(state, Operation.invocation("append", "not-a-block").symbol)

    def test_replay_keeps_full_state_sequence(self):
        adt = BTADT()
        ops = [Operation.invocation("append", Block("x", GENESIS_ID))]
        states = replay(adt, ops)
        assert len(states) == 2
        assert len(states[0].tree) == 1
        assert len(states[1].tree) == 2


class TestBlockTreeObject:
    def test_append_then_read(self):
        obj = BlockTreeObject()
        assert obj.append(Block("x", GENESIS_ID)) is True
        assert obj.read().ids == (GENESIS_ID, "x")

    def test_invalid_append_returns_false(self):
        obj = BlockTreeObject(predicate=MembershipValidity.of(["ok"]))
        assert obj.append(Block("nope", GENESIS_ID)) is False
        assert obj.read().ids == (GENESIS_ID,)

    def test_appends_chain_onto_selected_tip(self):
        obj = BlockTreeObject()
        obj.append(Block("x", GENESIS_ID))
        obj.append(Block("y", GENESIS_ID))  # re-parented under x
        assert obj.read().ids == (GENESIS_ID, "x", "y")

    def test_recording_produces_invocation_response_pairs(self):
        recorder = HistoryRecorder()
        obj = BlockTreeObject(recorder=recorder, process="p1")
        obj.append(Block("x", GENESIS_ID))
        obj.read()
        history = recorder.history()
        assert len(history.append_invocations("p1")) == 1
        assert len(history.read_responses("p1")) == 1
        assert history.read_responses("p1")[0].chain.ids == (GENESIS_ID, "x")

    def test_read_quiet_records_nothing(self):
        recorder = HistoryRecorder()
        obj = BlockTreeObject(recorder=recorder, process="p1")
        obj.read_quiet()
        assert len(recorder.history()) == 0


class TestTransitionCopyDiscipline:
    """Only accepted appends may copy the tree (Definition 3.1 audit)."""

    def test_read_transition_returns_the_same_state_object(self):
        adt = BTADT()
        state = adt.initial_state()
        symbol = Operation.invocation("read").symbol
        next_state = adt.transition(state, symbol)
        assert next_state is state
        assert next_state.tree is state.tree  # shared, not copied

    def test_rejected_append_transition_shares_the_tree(self):
        adt = BTADT(predicate=MembershipValidity.of(["allowed"]))
        state = adt.initial_state()
        symbol = Operation.invocation("append", Block("rejected", GENESIS_ID)).symbol
        next_state = adt.transition(state, symbol)
        assert next_state is state
        assert next_state.tree is state.tree

    def test_accepted_append_copies_instead_of_mutating(self):
        adt = BTADT()
        state = adt.initial_state()
        symbol = Operation.invocation("append", Block("x", GENESIS_ID)).symbol
        next_state = adt.transition(state, symbol)
        assert next_state is not state
        assert next_state.tree is not state.tree
        assert "x" in next_state.tree and "x" not in state.tree

    def test_replay_shares_trees_across_non_mutating_steps(self):
        adt = BTADT(selection=LongestChain())
        operations = [
            Operation.invocation("read"),
            Operation.invocation("append", Block("x", GENESIS_ID)),
            Operation.invocation("read"),
            Operation.invocation("read"),
        ]
        states = replay(adt, operations)
        # reads share their predecessor's tree; only the append copied.
        assert states[0].tree is states[1].tree
        assert states[1].tree is not states[2].tree
        assert states[2].tree is states[3].tree is states[4].tree
