"""Unit tests for the union prefix index (ConsistencyIndex)."""

from __future__ import annotations

import pytest

from repro.core.block import Block, Blockchain, GENESIS, GENESIS_ID
from repro.core.consistency import BlockValidityChecker, _ReferenceBlockValidityChecker
from repro.core.consistency_index import ConsistencyIndex, InconsistentChainError
from repro.core.history import HistoryRecorder
from repro.core.score import LengthScore, WeightScore


def _chain(*blocks: Block) -> Blockchain:
    return Blockchain((GENESIS, *blocks))


@pytest.fixture()
def forked_index():
    """Index holding two branches: a1-a2-a3 and b1-b2."""
    a1, a2, a3 = Block("a1", GENESIS_ID), Block("a2", "a1"), Block("a3", "a2", weight=2.0)
    b1, b2 = Block("b1", GENESIS_ID, weight=0.5), Block("b2", "b1")
    index = ConsistencyIndex()
    index.add_chain(_chain(a1, a2, a3), read_eid=10)
    index.add_chain(_chain(b1, b2), read_eid=20)
    index.add_chain(_chain(a1, a2), read_eid=30)
    return index


class TestMerging:
    def test_blocks_inserted_once(self, forked_index):
        assert len(forked_index) == 6  # genesis + 5
        assert forked_index.block_ids() == ("b0", "a1", "a2", "a3", "b1", "b2")

    def test_known_chain_is_cheap_and_tracked(self, forked_index):
        a1, a2 = forked_index.block("a1"), forked_index.block("a2")
        new = forked_index.add_chain(_chain(a1, a2), read_eid=40)
        assert new == []
        assert forked_index.read_tip(40) == "a2"

    def test_heights_and_weights(self, forked_index):
        assert forked_index.height_of("a3") == 3
        assert forked_index.height_of("b2") == 2
        assert forked_index.cumulative_weight("a3") == pytest.approx(4.0)
        assert forked_index.cumulative_weight("b2") == pytest.approx(1.5)

    def test_first_seen_read_is_the_introducing_read(self, forked_index):
        assert forked_index.first_seen_read("a3") == 10
        assert forked_index.first_seen_read("b1") == 20
        # a2 arrived with the first chain, not the third.
        assert forked_index.first_seen_read("a2") == 10

    def test_conflicting_block_content_rejected(self, forked_index):
        impostor = Block("a2", "a1", weight=99.0)
        with pytest.raises(InconsistentChainError):
            forked_index.add_chain(_chain(forked_index.block("a1"), impostor))

    def test_conflicting_genesis_content_rejected(self):
        from repro.core.block import genesis_block

        index = ConsistencyIndex()
        index.add_chain(Blockchain.genesis_only())
        with pytest.raises(InconsistentChainError):
            index.add_chain(Blockchain((genesis_block(payload=("tx",)),)))


class TestAncestry:
    def test_prefix_queries(self, forked_index):
        assert forked_index.is_prefix("a1", "a3")
        assert forked_index.is_prefix("a3", "a3")
        assert not forked_index.is_prefix("a3", "a1")
        assert not forked_index.is_prefix("b1", "a3")
        assert forked_index.prefix_related("a1", "a3")
        assert not forked_index.prefix_related("b2", "a2")

    def test_climb_variant_agrees_with_labels(self, forked_index):
        ids = forked_index.block_ids()
        for a in ids:
            for b in ids:
                assert forked_index.prefix_related(a, b) == forked_index.prefix_related_climb(a, b)

    def test_labels_refresh_after_mutation(self, forked_index):
        a3 = forked_index.block("a3")
        assert not forked_index.prefix_related("a3", "b2")
        a4 = Block("a4", "a3")
        forked_index.add_chain(
            _chain(forked_index.block("a1"), forked_index.block("a2"), a3, a4)
        )
        assert forked_index.is_prefix("a3", "a4")

    def test_lowest_common_ancestor(self, forked_index):
        assert forked_index.lowest_common_ancestor("a3", "b2") == GENESIS_ID
        assert forked_index.lowest_common_ancestor("a3", "a2") == "a2"
        assert forked_index.lowest_common_ancestor("a2", "a2") == "a2"


class TestScores:
    def test_path_scores(self, forked_index):
        assert forked_index.path_score("a3", LengthScore()) == 3.0
        assert forked_index.path_score("b2", WeightScore()) == pytest.approx(1.5)
        assert forked_index.path_score(
            "a3", WeightScore(min_increment=0.5)
        ) == pytest.approx(4.0 + 0.5 * 3)
        assert forked_index.path_score("a3", lambda chain: 1.0) is None

    def test_mcps_of_tips(self, forked_index):
        assert forked_index.mcps_of_tips("a3", "b2", LengthScore()) == 0.0
        assert forked_index.mcps_of_tips("a3", "a2", LengthScore()) == 2.0
        assert forked_index.mcps_of_tips("a3", "a2", WeightScore()) == pytest.approx(2.0)

    def test_tips_totally_ordered(self, forked_index):
        assert forked_index.tips_totally_ordered(["a1", "a2", "a3", "a1"])
        assert not forked_index.tips_totally_ordered(["a1", "b2"])
        assert forked_index.tips_totally_ordered([])


class TestBlockValidityMemoization:
    """Satellite regression: the validator runs once per distinct block."""

    @staticmethod
    def _history_with_repeated_reads(reads: int):
        rec = HistoryRecorder()
        b1, b2 = Block("v1", GENESIS_ID), Block("v2", "v1")
        rec.complete("i", "append", b1, True)
        rec.complete("i", "append", b2, True)
        for _ in range(reads):
            rec.complete("i", "read", None, _chain(b1, b2))
        return rec.history()

    def test_validator_called_once_per_block(self):
        history = self._history_with_repeated_reads(reads=25)
        calls = []

        def counting_validator(block):
            calls.append(block.block_id)
            return True

        result = BlockValidityChecker(counting_validator).check(history)
        assert result.holds
        assert sorted(calls) == ["v1", "v2"]  # not 25 × 2

        # The reference oracle revalidates per read — the behaviour the
        # memoization removes.
        calls.clear()
        _ReferenceBlockValidityChecker(counting_validator).check(history)
        assert len(calls) == 50

    def test_memoized_verdicts_keep_violations_identical(self):
        history = self._history_with_repeated_reads(reads=7)
        validator = lambda block: block.block_id != "v2"  # noqa: E731
        indexed = BlockValidityChecker(validator).check(history)
        reference = _ReferenceBlockValidityChecker(validator).check(history)
        assert indexed == reference
        assert not indexed.holds
        assert len(indexed.violations) == 7
