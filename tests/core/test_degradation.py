"""Unit tests for the :class:`DegradationMonitor`.

The monitor folds streamed read responses into divergence-depth samples
and a time-to-heal measurement.  These tests feed hand-built histories
through a :class:`HistoryRecorder` so every quantity is known exactly:
prefix-related reads must count as depth 0 (stale ≠ diverged), genuine
forks as the depth of the shallower branch past the LCA, crashed or
Byzantine tips must be excluded by the ``correct`` predicate, and the
heal is the first post-``heal_at`` observation at depth 0.
"""

from __future__ import annotations

from repro.core.block import GENESIS, Block, Blockchain
from repro.core.degradation import DegradationMonitor
from repro.core.history import HistoryRecorder


def _chain(*ids: str) -> Blockchain:
    blocks = [GENESIS]
    for bid in ids:
        blocks.append(Block(block_id=bid, parent_id=blocks[-1].block_id))
    return Blockchain.from_blocks(blocks)


def _read(recorder: HistoryRecorder, process: str, chain: Blockchain) -> None:
    token = recorder.invoke(process, "read")
    recorder.respond(token, output=chain)


class TestDivergenceDepth:
    def test_single_reader_never_diverges(self):
        recorder = HistoryRecorder()
        monitor = DegradationMonitor().attach(recorder)
        _read(recorder, "p0", _chain("a", "b"))
        assert monitor.reads_seen == 1
        assert monitor.current_divergence_depth == 0

    def test_prefix_related_tips_count_as_agreement(self):
        recorder = HistoryRecorder()
        monitor = DegradationMonitor().attach(recorder)
        _read(recorder, "p0", _chain("a", "b", "c"))
        _read(recorder, "p1", _chain("a"))  # stale prefix, not a fork
        assert monitor.current_divergence_depth == 0
        assert monitor.max_divergence_depth == 0

    def test_fork_depth_is_shallower_branch_past_lca(self):
        recorder = HistoryRecorder()
        monitor = DegradationMonitor().attach(recorder)
        _read(recorder, "p0", _chain("a", "x1", "x2", "x3"))
        _read(recorder, "p1", _chain("a", "y1", "y2"))
        # LCA is 'a': branches of depth 3 and 2 -> min is 2.
        assert monitor.current_divergence_depth == 2
        assert monitor.max_divergence_depth == 2

    def test_samples_record_depth_changes_only(self):
        recorder = HistoryRecorder()
        monitor = DegradationMonitor().attach(recorder)
        _read(recorder, "p0", _chain("a"))
        _read(recorder, "p1", _chain("a"))          # still depth 0: no new sample
        _read(recorder, "p0", _chain("a", "x1"))
        _read(recorder, "p1", _chain("a", "y1"))    # depth 1: sample
        _read(recorder, "p1", _chain("a", "x1"))    # back to 0: sample
        assert [depth for _, depth in monitor.samples] == [0, 1, 0]

    def test_correct_predicate_excludes_faulty_tips(self):
        recorder = HistoryRecorder()
        monitor = DegradationMonitor(correct=lambda pid: pid != "p1").attach(recorder)
        _read(recorder, "p0", _chain("a", "x1"))
        _read(recorder, "p1", _chain("a", "y1"))  # faulty view: ignored
        assert monitor.current_divergence_depth == 0

    def test_non_read_events_are_ignored(self):
        recorder = HistoryRecorder()
        monitor = DegradationMonitor().attach(recorder)
        token = recorder.invoke("p0", "append", argument=_chain("a").tip)
        recorder.respond(token, output=True)
        assert monitor.reads_seen == 0
        assert monitor.samples == []


class TestHealing:
    def test_time_to_heal_measures_first_agreement_after_heal(self):
        recorder = HistoryRecorder()
        clock = {"now": 0.0}
        monitor = DegradationMonitor(heal_at=10.0, clock=lambda: clock["now"]).attach(recorder)
        clock["now"] = 5.0
        _read(recorder, "p0", _chain("a", "x1"))
        _read(recorder, "p1", _chain("a", "y1"))
        assert monitor.healed_at is None  # diverged before the heal
        clock["now"] = 12.0
        _read(recorder, "p1", _chain("a", "y1"))
        assert monitor.healed_at is None  # post-heal but still diverged
        clock["now"] = 14.0
        _read(recorder, "p1", _chain("a", "x1", "x2"))
        assert monitor.healed_at == 14.0
        assert monitor.time_to_heal == 4.0
        # The heal instant is latched: later divergence does not unset it.
        clock["now"] = 20.0
        _read(recorder, "p1", _chain("a", "z1"))
        assert monitor.healed_at == 14.0

    def test_agreement_before_heal_time_does_not_count(self):
        recorder = HistoryRecorder()
        clock = {"now": 2.0}
        monitor = DegradationMonitor(heal_at=10.0, clock=lambda: clock["now"]).attach(recorder)
        _read(recorder, "p0", _chain("a"))
        _read(recorder, "p1", _chain("a"))
        assert monitor.healed_at is None  # depth 0, but the heal hasn't happened

    def test_no_heal_time_disables_the_measurement(self):
        recorder = HistoryRecorder()
        monitor = DegradationMonitor().attach(recorder)
        _read(recorder, "p0", _chain("a"))
        assert monitor.time_to_heal is None
        summary = monitor.summary()
        assert summary["heal_at"] is None
        assert summary["time_to_heal"] is None

    def test_summary_is_json_ready(self):
        recorder = HistoryRecorder()
        clock = {"now": 11.0}
        monitor = DegradationMonitor(heal_at=10.0, clock=lambda: clock["now"]).attach(recorder)
        _read(recorder, "p0", _chain("a"))
        summary = monitor.summary()
        assert summary == {
            "reads": 1,
            "max_divergence_depth": 0,
            "final_divergence_depth": 0,
            "heal_at": 10.0,
            "healed_at": 11.0,
            "time_to_heal": 1.0,
            "samples": 1,
        }
