"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.block import GENESIS, Block, BlockIdFactory, Blockchain
from repro.core.blocktree import BlockTree
from repro.core.history import HistoryRecorder


@pytest.fixture()
def ids() -> BlockIdFactory:
    """A fresh block-id factory per test."""
    return BlockIdFactory()


@pytest.fixture()
def recorder() -> HistoryRecorder:
    """A fresh history recorder per test."""
    return HistoryRecorder()


@pytest.fixture()
def linear_tree() -> BlockTree:
    """A tree holding the single chain b0 <- x1 <- x2 <- x3."""
    tree = BlockTree()
    parent = GENESIS.block_id
    for i in range(1, 4):
        block = Block(f"x{i}", parent)
        tree.append(block)
        parent = block.block_id
    return tree


@pytest.fixture()
def forked_tree() -> BlockTree:
    """A tree with two branches off the genesis block.

    Branch A: a1 <- a2 <- a3 (length 3); branch B: b1 <- b2 (length 2).
    """
    tree = BlockTree()
    parent = GENESIS.block_id
    for i in range(1, 4):
        block = Block(f"a{i}", parent)
        tree.append(block)
        parent = block.block_id
    parent = GENESIS.block_id
    for i in range(1, 3):
        block = Block(f"b{i}", parent)
        tree.append(block)
        parent = block.block_id
    return tree


def make_chain(*ids: str) -> Blockchain:
    """Helper: build a chain b0 <- ids[0] <- ids[1] <- ... (test utility)."""
    blocks = [GENESIS]
    parent = GENESIS.block_id
    for bid in ids:
        block = Block(bid, parent)
        blocks.append(block)
        parent = bid
    return Blockchain(tuple(blocks))


@pytest.fixture()
def chain_factory():
    """Expose :func:`make_chain` as a fixture."""
    return make_chain
