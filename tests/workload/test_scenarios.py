"""Unit tests for the figure scenarios and history generators."""

from __future__ import annotations

import pytest

from repro.core.consistency import check_eventual_consistency, check_strong_consistency
from repro.core.history import EventKind
from repro.workload.scenarios import (
    figure2_history,
    figure3_history,
    figure4_history,
    figure13_history,
    generate_chain_history,
    generate_forked_history,
)


class TestFigureHistories:
    def test_figure2_structure(self):
        history = figure2_history()
        assert set(history.processes) == {"i", "j"}
        assert len(history.read_responses()) == 6
        # i's reads have scores 2, 3, 4 — exactly the figure.
        scores_i = [r.chain.length for r in history.read_responses("i")]
        assert scores_i == [2, 3, 4]
        scores_j = [r.chain.length for r in history.read_responses("j")]
        assert scores_j == [1, 2, 4]

    def test_figure3_first_reads_diverge_final_reads_agree(self):
        history = figure3_history()
        first_i = history.read_responses("i")[0].chain
        first_j = history.read_responses("j")[0].chain
        assert first_i.diverges_from(first_j)
        last_i = history.read_responses("i")[-1].chain
        last_j = history.read_responses("j")[-1].chain
        assert last_i.ids == last_j.ids

    def test_figure4_final_reads_still_diverge(self):
        history = figure4_history()
        last_i = history.read_responses("i")[-1].chain
        last_j = history.read_responses("j")[-1].chain
        assert last_i.diverges_from(last_j)

    def test_figure13_contains_all_replication_events(self):
        history = figure13_history()
        assert len(history.replication_events(EventKind.SEND)) == 1
        assert len(history.replication_events(EventKind.RECEIVE)) == 3
        assert len(history.replication_events(EventKind.UPDATE)) == 3

    def test_figure13_drop_removes_events(self):
        history = figure13_history(drop_for=["j", "k"])
        assert len(history.replication_events(EventKind.RECEIVE)) == 1
        assert len(history.replication_events(EventKind.UPDATE)) == 1


class TestGenerators:
    def test_chain_history_is_strongly_consistent(self):
        for seed in range(5):
            history = generate_chain_history(n_processes=3, chain_length=8, seed=seed)
            assert check_strong_consistency(history).holds

    def test_chain_history_read_budget_respected(self):
        history = generate_chain_history(n_processes=2, chain_length=5, reads_per_process=4, seed=1)
        assert len(history.read_responses("p0")) == 4
        assert len(history.read_responses("p1")) == 4

    def test_chain_history_parameter_validation(self):
        with pytest.raises(ValueError):
            generate_chain_history(n_processes=0)
        with pytest.raises(ValueError):
            generate_chain_history(chain_length=0)

    def test_forked_history_resolved_is_ec_not_sc(self):
        for seed in range(5):
            history = generate_forked_history(branch_length=4, resolve=True, seed=seed)
            assert not check_strong_consistency(history).holds
            assert check_eventual_consistency(history).holds

    def test_forked_history_unresolved_is_neither(self):
        for seed in range(5):
            history = generate_forked_history(branch_length=4, resolve=False, seed=seed)
            assert not check_strong_consistency(history).holds
            assert not check_eventual_consistency(history).holds

    def test_forked_history_parameter_validation(self):
        with pytest.raises(ValueError):
            generate_forked_history(branch_length=0)
        with pytest.raises(ValueError):
            generate_forked_history(reads_per_process=0)
