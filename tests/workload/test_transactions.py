"""Unit tests for transaction streams and client workloads."""

from __future__ import annotations

import pytest

from repro.workload.transactions import ClientWorkload, Transaction, TransactionGenerator


class TestTransactionGenerator:
    def test_ids_are_unique(self):
        gen = TransactionGenerator(seed=1)
        txs = [gen.next_transaction("alice") for _ in range(50)]
        assert len({t.tx_id for t in txs}) == 50

    def test_no_conflicts_by_default(self):
        gen = TransactionGenerator(seed=1)
        spends = [s for _ in range(100) for s in gen.next_transaction("a").spends]
        assert len(spends) == len(set(spends))

    def test_conflict_rate_produces_double_spends(self):
        gen = TransactionGenerator(seed=2, conflict_rate=0.5)
        spends = [s for _ in range(300) for s in gen.next_transaction("a").spends]
        assert len(spends) > len(set(spends))

    def test_invalid_conflict_rate(self):
        with pytest.raises(ValueError):
            TransactionGenerator(conflict_rate=1.5)

    def test_batch_and_payload_sizes(self):
        gen = TransactionGenerator(seed=3)
        assert len(gen.batch("a", 4)) == 4
        assert len(gen.payload("a", 5)) == 5
        assert gen.payload("a", 0) == ()
        with pytest.raises(ValueError):
            gen.batch("a", -1)

    def test_determinism_given_seed(self):
        a = TransactionGenerator(seed=9).payload("x", 10)
        b = TransactionGenerator(seed=9).payload("x", 10)
        assert a == b

    def test_transaction_dataclass(self):
        tx = Transaction("tx1", "alice", spends=("coin1",))
        assert str(tx) == "tx1"
        assert tx.spends == ("coin1",)


class TestClientWorkload:
    def test_arrivals_scale_with_interval(self):
        workload = ClientWorkload(rate_per_time_unit=2.0, seed=1)
        total = sum(workload.arrivals_between(t, t + 1.0) for t in range(100))
        assert 150 <= total <= 250

    def test_zero_rate_produces_nothing(self):
        workload = ClientWorkload(rate_per_time_unit=0.0)
        assert workload.arrivals_between(0.0, 100.0) == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ClientWorkload(rate_per_time_unit=-1.0)

    def test_reversed_interval_rejected(self):
        workload = ClientWorkload()
        with pytest.raises(ValueError):
            workload.arrivals_between(5.0, 1.0)

    def test_carry_preserves_fractional_arrivals(self):
        workload = ClientWorkload(rate_per_time_unit=0.25, seed=4)
        total = sum(workload.arrivals_between(t, t + 1.0) for t in range(40))
        assert total >= 5
