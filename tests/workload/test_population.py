"""Population-scale client workloads: generation, scheduling, spec wiring.

Exercises :class:`~repro.workload.population.ClientPopulation` standalone
(determinism, validation, conflict column), its integration with the
protocol runners (streams → mempool → block payloads, identical under
both event cores), and the declarative plumbing — ``WorkloadSpec``'s
population axis must round-trip, sweep through ``expand_grid``, and
leave pre-existing spec digests untouched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.cache import spec_digest
from repro.engine.spec import ExperimentSpec, WorkloadSpec
from repro.engine.sweep import expand_grid
from repro.workload.population import ClientPopulation


def _population(**overrides):
    params = dict(
        clients=200,
        rate=0.5,
        duration=40.0,
        processes=("p0", "p1", "p2", "p3"),
        seed=7,
    )
    params.update(overrides)
    return ClientPopulation(**params)


# -- generation --------------------------------------------------------------


def test_same_seed_identical_streams():
    a = _population()
    b = _population()
    assert a.total_ops == b.total_ops
    for pid in a.processes:
        np.testing.assert_array_equal(a.streams[pid][0], b.streams[pid][0])
        np.testing.assert_array_equal(a.streams[pid][1], b.streams[pid][1])


def test_different_seeds_differ():
    a = _population(seed=7)
    b = _population(seed=8)
    assert any(
        len(a.streams[pid][0]) != len(b.streams[pid][0])
        or not np.array_equal(a.streams[pid][0], b.streams[pid][0])
        for pid in a.processes
    )


def test_streams_cover_every_process_sorted_in_window():
    population = _population()
    assert set(population.streams) == set(population.processes)
    total = 0
    for times, ops in population.streams.values():
        assert len(times) == len(ops)
        total += len(ops)
        if len(times):
            assert float(times.min()) >= 0.0
            assert float(times.max()) < population.duration
            assert np.all(np.diff(times) >= 0)  # sorted arrivals
    assert total == population.total_ops
    assert population.total_ops > 0
    assert population.generation_seconds >= 0.0


def test_fresh_coins_are_unique_across_processes():
    population = _population(conflict_rate=0.0)
    all_ops = np.concatenate([ops for _, ops in population.streams.values()])
    assert len(np.unique(all_ops)) == len(all_ops)


def test_conflict_rate_respends_earlier_coins():
    population = _population(clients=500, conflict_rate=0.5)
    all_ops = np.concatenate([ops for _, ops in population.streams.values()])
    # Respends reuse an earlier coin id, so duplicates appear…
    assert len(np.unique(all_ops)) < len(all_ops)
    # …but ids never leave the issued range and are never negative.
    assert int(all_ops.min()) >= 0
    assert int(all_ops.max()) < population.total_ops


@pytest.mark.parametrize(
    "overrides",
    (
        {"clients": 0},
        {"rate": -0.1},
        {"duration": 0.0},
        {"processes": ()},
        {"conflict_rate": 1.5},
    ),
)
def test_invalid_parameters_rejected(overrides):
    with pytest.raises(ValueError):
        _population(**overrides)


def test_stats_shape():
    population = _population()
    stats = population.stats()
    assert stats["clients"] == 200
    assert stats["total_ops"] == population.total_ops
    assert stats["generation_seconds"] == population.generation_seconds


# -- protocol integration ----------------------------------------------------


def _run_bitcoin(core: str, clients, duration: float = 40.0, n: int = 4):
    from repro.protocols.nakamoto import run_bitcoin

    return run_bitcoin(
        n=n,
        duration=duration,
        seed=11,
        token_rate=0.5,
        core=core,
        clients=clients,
    )


def test_population_histories_identical_across_cores():
    array = _run_bitcoin("array", clients=300)
    heap = _run_bitcoin("heap", clients=300)
    assert array.history.events == heap.history.events
    assert array.network.simulator.events_processed == heap.network.simulator.events_processed
    assert array.population.total_ops == heap.population.total_ops
    assert array.population.scheduled_ops == array.population.total_ops


def test_client_ops_flow_into_block_payloads():
    """End to end: streams → mempool → mined block payloads carry coins."""
    result = _run_bitcoin("array", clients=300)
    payloads = [
        block.payload
        for replica in result.replicas.values()
        for block in replica.tree
        if block.payload
    ]
    assert payloads, "no block carried a payload"
    coins = {item for payload in payloads for item in payload}
    assert any(str(item).startswith("coin") for item in coins)
    # Mempools were actually drained, not just filled.
    assert any(len(replica.mempool) < 100_000 for replica in result.replicas.values())


def test_runs_without_population_have_no_population_attached():
    result = _run_bitcoin("array", clients=None)
    assert result.population is None


# -- declarative spec plumbing -----------------------------------------------


def test_workload_spec_round_trip():
    spec = WorkloadSpec(clients=1000, client_rate=0.25)
    data = spec.to_dict()
    assert data["clients"] == 1000
    assert data["client_rate"] == 0.25
    assert WorkloadSpec.from_dict(data) == spec


def test_bare_workload_spec_digest_unchanged():
    """The population keys are omitted when unset, so specs (and cache
    digests) from before the axis existed serialize byte-identically."""
    bare = WorkloadSpec().to_dict()
    assert set(bare) == {"read_interval", "use_lrc", "merit", "merit_exponent"}
    with_population = ExperimentSpec(
        protocol="bitcoin", workload=WorkloadSpec(clients=100)
    )
    without = ExperimentSpec(protocol="bitcoin")
    assert spec_digest(with_population) != spec_digest(without)
    assert "clients" not in without.to_dict()["workload"]


def test_population_spec_executes_end_to_end():
    spec = ExperimentSpec(
        protocol="bitcoin",
        replicas=4,
        duration=40.0,
        seed=3,
        workload=WorkloadSpec(clients=500, client_rate=0.5),
        params={"token_rate": 0.4},
    )
    result = spec.execute()
    assert result.network["client_ops"] > 0
    assert "workload_generation_seconds" in result.timings
    # Round-trips keep the population fields.
    assert ExperimentSpec.from_dict(spec.to_dict()) == spec


def test_ten_thousand_clients_through_declarative_spec():
    """The ISSUE acceptance shape: a 10k-client population runs end to
    end through one declarative spec, and generating it stays a small
    fraction of the run it feeds."""
    spec = ExperimentSpec(
        protocol="bitcoin",
        replicas=4,
        duration=30.0,
        seed=5,
        workload=WorkloadSpec(clients=10_000, client_rate=0.5),
        params={"token_rate": 0.4},
    )
    result = spec.execute()
    assert result.network["client_ops"] > 100_000
    generation = result.timings["workload_generation_seconds"]
    assert generation < 0.15 * result.timings["run_seconds"]


def test_clients_is_a_sweep_axis():
    base = ExperimentSpec(
        protocol="bitcoin", replicas=3, duration=20.0, workload=WorkloadSpec(client_rate=0.3)
    )
    cells = expand_grid(base, {"workload.clients": [100, 1000, 10_000]})
    assert [cell.workload.clients for cell in cells] == [100, 1000, 10_000]
    assert all(cell.workload.client_rate == 0.3 for cell in cells)
    assert "workload.clients=1000" in cells[1].label


def test_unknown_workload_axis_rejected():
    base = ExperimentSpec(protocol="bitcoin")
    with pytest.raises(KeyError, match="unknown workload field"):
        expand_grid(base, {"workload.velocity": [1, 2]})
