"""Stream-identity regressions for the vectorized workload refactors.

The PR 6 hot-path work replaced per-op ``numpy.random.Generator``
attribute lookups with hoisted bound methods and turned some scalar draw
loops into single vectorized fills.  None of that may change a single
drawn value: every recorded history, every benchmark baseline and every
cached sweep artifact is seeded, and a perturbed stream would silently
invalidate all of them.  These tests pin the exact equivalences the
refactors rely on.
"""

from __future__ import annotations

import numpy as np

from repro.workload.merit import zipf_merit
from repro.workload.scenarios import generate_chain_history
from repro.workload.transactions import ClientWorkload, TransactionGenerator


# -- numpy-level equivalences the refactors assume ---------------------------


def test_vectorized_integers_matches_scalar_loop():
    """One ``integers(0, n, size=k)`` fill draws the same elements — and
    leaves the generator in the same state — as k scalar calls."""
    vec_rng = np.random.default_rng(42)
    scalar_rng = np.random.default_rng(42)
    vectorized = vec_rng.integers(0, 7, size=100)
    scalars = [int(scalar_rng.integers(0, 7)) for _ in range(100)]
    assert vectorized.tolist() == scalars
    # Same state afterwards: the next draw agrees too.
    assert float(vec_rng.random()) == float(scalar_rng.random())


def test_hoisted_bound_method_shares_generator_state():
    rng = np.random.default_rng(9)
    hoisted = rng.random
    assert hoisted() == np.random.default_rng(9).random()
    # The hoisted binding advances the same underlying state.
    follow = np.random.default_rng(9)
    follow.random()
    assert rng.random() == follow.random()


# -- zipf merit --------------------------------------------------------------


def test_zipf_vectorized_matches_per_rank_loop():
    """The zipf weights are byte-equal to the historical per-rank loop
    normalized through ``raw / raw.sum()`` — the exact old computation.
    (A vectorized ``np.arange ** exponent`` fill was tried and rejected:
    numpy's pow differs from Python's by ULPs for fractional exponents.)"""
    for n, exponent in ((1, 1.0), (5, 1.0), (64, 0.5), (64, 2.75), (257, 1.2)):
        raw = np.array([1.0 / (i + 1) ** exponent for i in range(n)], dtype=float)
        expected = (raw / raw.sum()).tolist()
        merits = zipf_merit(n, exponent=exponent)
        actual = [merits.merit_of(f"p{i}") for i in range(n)]
        assert actual == expected  # exact float equality, not approx


def test_zipf_unchanged_golden_values():
    merits = zipf_merit(4, exponent=1.0)
    total = 1.0 + 0.5 + 1.0 / 3.0 + 0.25
    assert merits.merit_of("p0") == 1.0 / total
    assert merits.merit_of("p3") == 0.25 / total
    assert merits.merit_of("unknown") == 0.0


# -- transaction generator ---------------------------------------------------


def _reference_transactions(seed: int, conflict_rate: float, count: int):
    """The pre-hoisting implementation, inlined: raw attribute lookups on
    the generator, same draw order."""
    rng = np.random.default_rng(seed)
    counter = 0
    spent_pool: list = []
    out = []
    for _ in range(count):
        counter += 1
        tx_id = f"tx{counter}"
        if spent_pool and rng.random() < conflict_rate:
            spends = (str(rng.choice(spent_pool)),)
        else:
            coin = f"coin{counter}"
            spent_pool.append(coin)
            spends = (coin,)
        out.append((tx_id, spends))
    return out


def test_transaction_generator_stream_identity():
    for seed, conflict_rate in ((0, 0.0), (7, 0.3), (13, 0.9)):
        generator = TransactionGenerator(seed=seed, conflict_rate=conflict_rate)
        produced = [
            (tx.tx_id, tx.spends) for tx in generator.batch("client", 200)
        ]
        assert produced == _reference_transactions(seed, conflict_rate, 200)


def test_client_workload_stream_identity():
    """``arrivals_between`` with the hoisted ``integers`` binding matches
    the raw-lookup reference draw for draw."""
    hoisted = ClientWorkload(rate_per_time_unit=2.0, seed=5)
    rng = np.random.default_rng(5)
    carry = 0.0
    for t0, t1 in ((0.0, 1.0), (1.0, 3.5), (3.5, 3.6), (3.6, 10.0)):
        expected = 2.0 * (t1 - t0) + carry
        count = int(expected)
        carry = expected - count
        if count > 0:
            count = max(0, count + int(rng.integers(-1, 2)))
        assert hoisted.arrivals_between(t0, t1) == count


# -- chain-history generator -------------------------------------------------


def _reference_chain_history(n_processes, chain_length, reads_per_process, seed):
    """``generate_chain_history`` as it was before vectorization: one
    scalar ``rng.integers(0, n)`` call per block height."""
    from repro.core.block import Block, Blockchain, GENESIS, GENESIS_ID
    from repro.core.history import HistoryRecorder

    rng = np.random.default_rng(seed)
    processes = [f"p{i}" for i in range(n_processes)]
    rec = HistoryRecorder()
    blocks = []
    parent = GENESIS_ID
    for height in range(1, chain_length + 1):
        creator = processes[int(rng.integers(0, n_processes))]
        block = Block(f"c{height}", parent, creator=creator)
        blocks.append(block)
        parent = block.block_id
    appended = 0
    last_read_length = {p: 0 for p in processes}
    read_budget = {p: reads_per_process for p in processes}
    while appended < chain_length or any(read_budget.values()):
        do_append = appended < chain_length and (
            not any(read_budget.values()) or rng.random() < 0.5
        )
        if do_append:
            block = blocks[appended]
            rec.complete(block.creator or processes[0], "append", block, True)
            appended += 1
        else:
            eligible = [p for p in processes if read_budget[p] > 0]
            process = eligible[int(rng.integers(0, len(eligible)))]
            lo = last_read_length[process]
            length = int(rng.integers(lo, appended + 1)) if appended >= lo else lo
            chain = Blockchain((GENESIS, *blocks[:length]))
            rec.complete(process, "read", None, chain)
            last_read_length[process] = length
            read_budget[process] -= 1
    return rec.history()


def test_generate_chain_history_unchanged_by_vectorization():
    """The bulk creator fill reproduces the pre-vectorization histories
    exactly — same blocks, same interleaving, same read lengths."""
    for seed in (0, 3, 17):
        vectorized = generate_chain_history(
            n_processes=4, chain_length=12, reads_per_process=5, seed=seed
        )
        reference = _reference_chain_history(4, 12, 5, seed)
        assert vectorized.events == reference.events
