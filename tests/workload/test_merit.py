"""Unit tests for merit distributions."""

from __future__ import annotations

import pytest

from repro.workload.merit import (
    MeritDistribution,
    permissioned_merit,
    proportional_merit,
    uniform_merit,
    zipf_merit,
)


class TestConstruction:
    def test_uniform_sums_to_one(self):
        merit = uniform_merit(8)
        assert sum(merit.as_dict().values()) == pytest.approx(1.0)
        assert merit.merit_of("p0") == pytest.approx(1 / 8)

    def test_at_least_one_process_required(self):
        with pytest.raises(ValueError):
            uniform_merit(0)
        with pytest.raises(ValueError):
            MeritDistribution(())

    def test_zipf_is_normalized_and_decreasing(self):
        merit = zipf_merit(5, exponent=1.0)
        values = [merit.merit_of(f"p{i}") for i in range(5)]
        assert sum(values) == pytest.approx(1.0)
        assert values == sorted(values, reverse=True)

    def test_zipf_exponent_zero_is_uniform(self):
        merit = zipf_merit(4, exponent=0.0)
        assert merit.merit_of("p0") == pytest.approx(0.25)

    def test_zipf_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            zipf_merit(3, exponent=-1.0)

    def test_proportional_preserves_ratios(self):
        merit = proportional_merit([1.0, 3.0])
        assert merit.merit_of("p1") == pytest.approx(3 * merit.merit_of("p0"))

    def test_proportional_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            proportional_merit([])
        with pytest.raises(ValueError):
            proportional_merit([-1.0, 2.0])
        with pytest.raises(ValueError):
            proportional_merit([0.0, 0.0])

    def test_from_mapping_with_and_without_normalization(self):
        merit = MeritDistribution.from_mapping({"a": 2.0, "b": 2.0})
        assert merit.merit_of("a") == pytest.approx(0.5)
        raw = MeritDistribution.from_mapping({"a": 2.0}, normalize=False)
        assert raw.merit_of("a") == 2.0

    def test_negative_merit_rejected(self):
        with pytest.raises(ValueError):
            MeritDistribution((("a", -0.5), ("b", 1.5)))


class TestPermissioned:
    def test_writers_share_merit_readers_get_zero(self):
        merit = permissioned_merit(["w1", "w2"], readers=["r1", "r2"])
        assert merit.merit_of("w1") == pytest.approx(0.5)
        assert merit.merit_of("r1") == 0.0
        assert set(merit.writers()) == {"w1", "w2"}

    def test_requires_at_least_one_writer(self):
        with pytest.raises(ValueError):
            permissioned_merit([])

    def test_writers_listed_as_readers_are_not_duplicated(self):
        merit = permissioned_merit(["w"], readers=["w", "r"])
        assert merit.processes == ("r", "w")


class TestQueries:
    def test_unknown_process_has_zero_merit(self):
        assert uniform_merit(3).merit_of("stranger") == 0.0

    def test_dominant_breaks_ties_lexicographically(self):
        merit = MeritDistribution((("b", 0.5), ("a", 0.5)))
        assert merit.dominant() == "a"

    def test_total_and_processes(self):
        merit = uniform_merit(4)
        assert merit.total == pytest.approx(1.0)
        assert merit.processes == ("p0", "p1", "p2", "p3")
