"""Tests for the command-line interface (python -m repro ...)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.command == "table1"
        assert args.replicas == 5

    def test_classify_requires_known_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["classify", "dogecoin"])


class TestCommands:
    def test_hierarchy_command(self, capsys):
        assert main(["hierarchy"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "IMPOSSIBLE" in out
        assert "R(BT-ADT_SC, Θ_F,k=1)" in out

    def test_figures_command(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out and "Figure 4" in out
        assert "MISMATCH" not in out

    def test_classify_command_hyperledger(self, capsys):
        assert main([
            "classify", "hyperledger", "--replicas", "4", "--duration", "60", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "R(BT-ADT_SC, Θ_F,k=1)" in out
        assert "fairness" in out

    def test_classify_command_bitcoin_fork_prone(self, capsys):
        assert main([
            "classify", "bitcoin", "--replicas", "4", "--duration", "80",
            "--seed", "3", "--fork-prone",
        ]) == 0
        out = capsys.readouterr().out
        assert "R(BT-ADT_EC, Θ_P)" in out

    def test_table1_command(self, capsys):
        assert main(["table1", "--replicas", "4", "--duration", "60", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        for system in ("bitcoin", "ethereum", "hyperledger", "redbelly"):
            assert system in out
