"""Tests for the command-line interface (python -m repro ...)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.command == "table1"
        assert args.replicas == 5

    def test_classify_requires_known_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["classify", "dogecoin"])


class TestCommands:
    def test_hierarchy_command(self, capsys):
        assert main(["hierarchy"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "IMPOSSIBLE" in out
        assert "R(BT-ADT_SC, Θ_F,k=1)" in out

    def test_figures_command(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out and "Figure 4" in out
        assert "MISMATCH" not in out

    def test_classify_command_hyperledger(self, capsys):
        assert main([
            "classify", "hyperledger", "--replicas", "4", "--duration", "60", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "R(BT-ADT_SC, Θ_F,k=1)" in out
        assert "fairness" in out

    def test_classify_command_bitcoin_fork_prone(self, capsys):
        assert main([
            "classify", "bitcoin", "--replicas", "4", "--duration", "80",
            "--seed", "3", "--fork-prone",
        ]) == 0
        out = capsys.readouterr().out
        assert "R(BT-ADT_EC, Θ_P)" in out

    def test_table1_command(self, capsys):
        assert main(["table1", "--replicas", "4", "--duration", "60", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        for system in ("bitcoin", "ethereum", "hyperledger", "redbelly"):
            assert system in out


class TestSweepCommand:
    def test_sweep_requires_a_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_sweep_parser_defaults(self):
        args = build_parser().parse_args(["sweep", "--protocol", "bitcoin"])
        assert args.jobs == 1
        assert args.out == "sweep_results.json"

    def test_sweep_writes_json_results(self, capsys, tmp_path):
        out = tmp_path / "results.json"
        assert main([
            "sweep", "--protocol", "hyperledger", "--replicas", "3",
            "--duration", "30", "--seeds", "0:2", "--out", str(out),
        ]) == 0
        captured = capsys.readouterr().out
        assert "2 cells" in captured
        import json
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.sweep/2"
        assert payload["failures"] == 0
        assert len(payload["cells"]) == 2
        assert [c["spec"]["seed"] for c in payload["cells"]] == [0, 1]
        assert all("classification" in c for c in payload["cells"])

    def test_serial_and_parallel_sweeps_agree_per_cell(self, capsys, tmp_path):
        import json
        outputs = {}
        for jobs in ("1", "2"):
            out = tmp_path / f"jobs{jobs}.json"
            assert main([
                "sweep", "--protocol", "hyperledger", "--replicas", "3",
                "--duration", "30", "--seeds", "0:2", "--jobs", jobs,
                "--out", str(out),
            ]) == 0
            cells = json.loads(out.read_text())["cells"]
            outputs[jobs] = [
                {k: v for k, v in cell.items() if k != "timings"} for cell in cells
            ]
        capsys.readouterr()
        assert outputs["1"] == outputs["2"]

    def test_fork_sweep_still_prints_the_ablation(self, capsys):
        assert main([
            "fork-sweep", "--replicas", "3", "--duration", "40", "--seed", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "Fork-rate ablation" in out
        assert "∞" in out

    def test_sweep_cache_flag_serves_rerun_from_disk(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        out = tmp_path / "results.json"
        argv = [
            "sweep", "--protocol", "hyperledger", "--replicas", "3",
            "--duration", "30", "--seeds", "0:2", "--out", str(out),
            "--cache", str(cache_dir),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0/2 cells from cache" in first
        first_payload = out.read_text()

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "2/2 cells from cache" in second
        assert out.read_text() == first_payload  # byte-identical re-run

    def test_sweep_cache_flag_defaults_without_a_dir(self):
        args = build_parser().parse_args(["sweep", "--protocol", "bitcoin", "--cache"])
        assert args.cache == ".repro-cache"
        args = build_parser().parse_args(["sweep", "--protocol", "bitcoin"])
        assert args.cache is None

    def test_sweep_resilience_parser_defaults(self):
        args = build_parser().parse_args(["sweep", "--protocol", "bitcoin"])
        assert args.backend is None
        assert args.shard_index is None
        assert args.timeout is None
        assert args.retries == 0
        assert args.max_failures == 0
        assert args.journal is None
        assert not args.resume
        args = build_parser().parse_args(["sweep", "--protocol", "bitcoin", "--journal"])
        assert args.journal == "sweep.journal.jsonl"

    def test_sweep_unknown_backend_lists_registered(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--protocol", "bitcoin", "--backend", "warp"])
        message = str(excinfo.value)
        assert "unknown executor 'warp'" in message
        assert "'serial'" in message and "'shard'" in message

    def test_sweep_shard_flag_validation(self):
        with pytest.raises(SystemExit, match="requires --shard-index"):
            main(["sweep", "--protocol", "bitcoin", "--backend", "shard"])
        with pytest.raises(SystemExit, match="cannot parse --shard-index"):
            main(["sweep", "--protocol", "bitcoin", "--shard-index", "four"])
        with pytest.raises(SystemExit, match="out of range"):
            main(["sweep", "--protocol", "bitcoin", "--shard-index", "4/4"])
        with pytest.raises(SystemExit, match="requires --backend shard"):
            main([
                "sweep", "--protocol", "bitcoin",
                "--backend", "serial", "--shard-index", "0/4",
            ])

    def test_sweep_resume_flag_validation(self):
        with pytest.raises(SystemExit, match="requires --journal"):
            main(["sweep", "--protocol", "bitcoin", "--resume", "--cache"])
        with pytest.raises(SystemExit, match="requires --cache"):
            main(["sweep", "--protocol", "bitcoin", "--resume", "--journal"])

    def test_sweep_flaky_rates_validation(self):
        with pytest.raises(SystemExit, match="unknown injection kind"):
            main([
                "sweep", "--protocol", "bitcoin", "--flaky-rates", "gamma-ray=0.5",
            ])
        with pytest.raises(SystemExit, match="cannot parse --flaky-rates"):
            main(["sweep", "--protocol", "bitcoin", "--flaky-rates", "exception"])

    def test_sweep_shard_invocations_merge_byte_identically(self, capsys, tmp_path):
        common = [
            "sweep", "--protocol", "hyperledger", "--replicas", "3",
            "--duration", "30", "--seeds", "0:4", "--cache", str(tmp_path / "cache"),
        ]
        for index in range(4):
            out = tmp_path / f"shard{index}.json"
            assert main(common + ["--shard-index", f"{index}/4", "--out", str(out)]) == 0
            shard_out = capsys.readouterr().out
            assert f"[shard {index}/4: 1/4 grid cells]" in shard_out
            payload = json.loads(out.read_text())
            assert payload["shard"] == {"index": index, "count": 4}
            assert len(payload["cells"]) == 1

        serial_out = tmp_path / "serial.json"
        assert main([
            "sweep", "--protocol", "hyperledger", "--replicas", "3",
            "--duration", "30", "--seeds", "0:4", "--out", str(serial_out),
        ]) == 0
        merged_out = tmp_path / "merged.json"
        assert main(common + ["--out", str(merged_out)]) == 0
        merged_text = capsys.readouterr().out
        assert "4/4 cells from cache" in merged_text

        def stable_cells(path):
            return [
                {k: v for k, v in cell.items() if k != "timings"}
                for cell in json.loads(path.read_text())["cells"]
            ]

        union = [
            stable_cells(tmp_path / f"shard{index}.json")[0] for index in range(4)
        ]
        assert union == stable_cells(serial_out)
        assert stable_cells(merged_out) == stable_cells(serial_out)

    def test_sweep_resume_skips_completed_cells(self, capsys, tmp_path):
        argv = [
            "sweep", "--protocol", "hyperledger", "--replicas", "3",
            "--duration", "30", "--seeds", "0:2",
            "--cache", str(tmp_path / "cache"),
            "--journal", str(tmp_path / "journal.jsonl"),
            "--out", str(tmp_path / "results.json"),
        ]
        assert main(argv) == 0
        first_payload = (tmp_path / "results.json").read_text()
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "2 resumed from journal" in out
        assert (tmp_path / "results.json").read_text() == first_payload

    def test_sweep_chaos_run_degrades_failures_into_the_payload(self, capsys, tmp_path):
        out = tmp_path / "results.json"
        assert main([
            "sweep", "--protocol", "hyperledger", "--replicas", "3",
            "--duration", "30", "--seeds", "0:4",
            "--flaky-rates", "exception=1.0", "--retries", "1",
            "--retry-backoff", "0", "--max-failures", "-1", "--out", str(out),
        ]) == 0
        captured = capsys.readouterr().out
        assert "4 FAILED" in captured
        assert "FAILED after 2 attempt(s)" in captured
        payload = json.loads(out.read_text())
        assert payload["failures"] == 4
        assert all(cell["cell_failure"] for cell in payload["cells"])


class TestBenchCommand:
    def test_bench_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.command == "bench"
        assert args.out_dir == "."
        assert not args.quick

    def test_bench_quick_writes_artifact_and_prints_speedups(self, capsys, tmp_path):
        assert main(["bench", "--quick", "--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Perf bench" in out
        assert "selection_ghost_fork_heavy" in out
        artifacts = list(tmp_path.glob("BENCH_*.json"))
        assert len(artifacts) == 1
        import json
        payload = json.loads(artifacts[0].read_text())
        assert payload["schema"] == "repro.bench/1"
        assert payload["quick"] is True


class TestMonitorFlags:
    def test_classify_monitor_prints_streaming_verdicts(self, capsys):
        assert main([
            "classify", "hyperledger", "--replicas", "3", "--duration", "30",
            "--seed", "3", "--monitor",
        ]) == 0
        out = capsys.readouterr().out
        assert "streaming monitor" in out
        assert "strong consistency: True" in out
        assert "eventual-prefix=True" in out

    def test_classify_without_monitor_stays_silent(self, capsys):
        assert main([
            "classify", "hyperledger", "--replicas", "3", "--duration", "30",
            "--seed", "3",
        ]) == 0
        assert "streaming monitor" not in capsys.readouterr().out

    def test_sweep_monitor_lands_in_json(self, capsys, tmp_path):
        out = tmp_path / "results.json"
        assert main([
            "sweep", "--protocol", "hyperledger", "--replicas", "3",
            "--duration", "20", "--seeds", "0:2", "--monitor", "--out", str(out),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text(encoding="utf-8"))
        for cell in payload["cells"]:
            assert cell["spec"]["monitor"] is True
            assert set(cell["consistency"]["properties"]) == {
                "block-validity",
                "local-monotonic-read",
                "strong-prefix",
                "ever-growing-tree",
                "eventual-prefix",
            }


class TestTopologyFlags:
    def test_classify_topology_flag_runs(self, capsys):
        assert main([
            "classify", "bitcoin", "--replicas", "4", "--duration", "30",
            "--seed", "3", "--topology", "gossip:fanout=2",
        ]) == 0
        assert "blocks/replica" in capsys.readouterr().out

    def test_classify_topology_rejects_unknown_kind(self):
        with pytest.raises(SystemExit, match="unknown topology 'mesh2'"):
            main([
                "classify", "bitcoin", "--replicas", "3", "--duration", "10",
                "--topology", "mesh2",
            ])

    def test_topology_parse_forms(self):
        from repro.cli import _parse_topology

        assert _parse_topology("ring").kind == "ring"
        spec = _parse_topology("sharded:shards=3,cross_links=2")
        assert spec.kind == "sharded"
        assert spec.params == {"shards": 3, "cross_links": 2}
        spec = _parse_topology(
            '{"kind": "committee", "params": {"members": ["p0", "p1"]}}'
        )
        assert spec.params["members"] == ["p0", "p1"]
        # JSON list values survive the colon form: commas inside brackets
        # and quotes are not pair separators.
        spec = _parse_topology(
            'committee:members=["p0","p1"],include_observers=false'
        )
        assert spec.params == {"members": ["p0", "p1"], "include_observers": False}
        spec = _parse_topology('sharded:groups=[["p0","p1"],["p2"]],cross_links=1')
        assert spec.params == {"groups": [["p0", "p1"], ["p2"]], "cross_links": 1}
        with pytest.raises(SystemExit, match="not 'key=value'"):
            _parse_topology("gossip:fanout")

    def test_sweep_grids_over_topologies(self, capsys, tmp_path):
        out = tmp_path / "results.json"
        assert main([
            "sweep", "--protocol", "bitcoin", "--replicas", "4",
            "--duration", "20", "--topologies", "full,gossip,ring",
            "--out", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "topology=gossip" in printed
        payload = json.loads(out.read_text(encoding="utf-8"))
        kinds = [
            (cell["spec"].get("topology") or {"kind": None})["kind"]
            for cell in payload["cells"]
        ]
        assert kinds == ["full", "gossip", "ring"]

    def test_topologies_axis_rejects_parameterized_entries(self):
        with pytest.raises(SystemExit, match="bare registered kinds"):
            main([
                "sweep", "--protocol", "bitcoin", "--replicas", "3",
                "--duration", "10", "--topologies", "gossip:fanout=3,ring",
            ])

    def test_sweep_base_topology_applies_to_every_cell(self, capsys, tmp_path):
        out = tmp_path / "results.json"
        assert main([
            "sweep", "--protocol", "bitcoin", "--replicas", "4",
            "--duration", "15", "--seeds", "0:2",
            "--topology", "gossip:fanout=2", "--out", str(out),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert all(
            cell["spec"]["topology"] == {
                "kind": "gossip", "params": {"fanout": 2}, "seed": None,
            }
            for cell in payload["cells"]
        )


class TestFaultFlags:
    def test_classify_fault_flag_prints_degradation(self, capsys):
        assert main([
            "classify", "bitcoin", "--replicas", "4", "--duration", "60",
            "--seed", "3",
            "--fault", 'eclipse:victim="p2",at=10,until=30',
        ]) == 0
        out = capsys.readouterr().out
        assert "degradation monitor" in out
        assert "time_to_heal=" in out

    def test_classify_fault_rejects_unknown_kind(self):
        with pytest.raises(SystemExit, match="unknown fault 'gremlins'"):
            main([
                "classify", "bitcoin", "--replicas", "3", "--duration", "10",
                "--fault", "gremlins",
            ])

    def test_fault_parse_forms(self):
        from repro.cli import _parse_fault

        spec = _parse_fault("partition")
        assert spec.kind == "partition" and spec.params == {}
        spec = _parse_fault('crash:crash_at={"p1": 30.0}')
        assert spec.crash_at == {"p1": 30.0} and spec.params == {}
        spec = _parse_fault(
            'partition:groups=[["p0","p1"],["p2","p3"]],at=10,heal_at=40'
        )
        assert spec.params == {
            "groups": [["p0", "p1"], ["p2", "p3"]], "at": 10, "heal_at": 40,
        }
        spec = _parse_fault(
            '{"kind": "churn", "params": {"leave": {"p4": 20.0}}}'
        )
        assert spec.kind == "churn" and spec.params == {"leave": {"p4": 20.0}}
        with pytest.raises(SystemExit, match="not 'key=value'"):
            _parse_fault("eclipse:victim")

    def test_sweep_base_fault_applies_to_every_cell(self, capsys, tmp_path):
        out = tmp_path / "results.json"
        assert main([
            "sweep", "--protocol", "bitcoin", "--replicas", "4",
            "--duration", "30", "--seeds", "0:2",
            "--fault", 'crash:crash_at={"p3": 10.0}', "--out", str(out),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert all(
            cell["spec"]["fault"] == {
                "kind": "crash", "crash_at": {"p3": 10.0}, "byzantine": [],
            }
            for cell in payload["cells"]
        )


class TestBenchScenarioFilter:
    def test_parser_default_is_full_suite(self):
        args = build_parser().parse_args(["bench"])
        assert args.scenario is None

    def test_single_scenario_runs_only_its_section(self, capsys, tmp_path):
        assert main([
            "bench", "--quick", "--scenario", "selection",
            "--out-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "selection_ghost_fork_heavy" in out
        # Filtered runs write a .partial artifact so they can never
        # clobber the same-day full trajectory point.
        artifact = next(tmp_path.glob("BENCH_*"))
        assert artifact.name.endswith(".partial.json")
        payload = json.loads(artifact.read_text())
        assert set(payload["scenarios"]) == {
            "selection_longest_fork_heavy",
            "selection_heaviest_fork_heavy",
            "selection_ghost_fork_heavy",
        }
        assert payload["scenario_filter"] == ["selection"]

    def test_scenario_name_selects_its_section(self, capsys, tmp_path):
        assert main([
            "bench", "--quick", "--scenario", "table1_sweep",
            "--out-dir", str(tmp_path),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(next(tmp_path.glob("BENCH_*.json")).read_text())
        assert set(payload["scenarios"]) == {"table1_sweep"}

    def test_unknown_scenario_lists_the_vocabulary(self):
        with pytest.raises(SystemExit, match="unknown bench scenario 'warp'"):
            main(["bench", "--quick", "--scenario", "warp"])


class TestCheckpointFlags:
    def test_parser_defaults(self):
        classify = build_parser().parse_args(["classify", "bitcoin"])
        assert classify.checkpoint_every is None
        assert classify.checkpoint_dir is None
        sweep = build_parser().parse_args(["sweep", "--protocol", "bitcoin"])
        assert sweep.checkpoint_every is None
        resume = build_parser().parse_args(["resume-run", "foo.ckpt"])
        assert resume.checkpoint == "foo.ckpt"

    def test_non_positive_knobs_are_rejected_loudly(self):
        with pytest.raises(SystemExit, match=r"--timeout must be > 0"):
            main(["sweep", "--protocol", "bitcoin", "--timeout", "-1"])
        with pytest.raises(SystemExit, match=r"--retries must be >= 0"):
            main(["sweep", "--protocol", "bitcoin", "--retries", "-2"])
        with pytest.raises(SystemExit, match=r"--checkpoint-every must be > 0"):
            main(["sweep", "--protocol", "bitcoin", "--checkpoint-every", "0"])
        with pytest.raises(SystemExit, match=r"--checkpoint-every must be > 0"):
            main(["classify", "bitcoin", "--checkpoint-every", "-5"])
        with pytest.raises(SystemExit, match=r"--checkpoint-every must be > 0"):
            main(["resume-run", "foo.ckpt", "--checkpoint-every", "0"])

    def test_serial_backend_cannot_checkpoint(self):
        with pytest.raises(SystemExit, match="requires a process backend"):
            main([
                "sweep", "--protocol", "bitcoin", "--backend", "serial",
                "--checkpoint-every", "100",
            ])

    def test_resume_run_missing_file_fails_loudly(self, tmp_path):
        with pytest.raises(SystemExit, match="no checkpoint at"):
            main(["resume-run", str(tmp_path / "absent.ckpt")])

    def test_classify_checkpoint_then_resume_run(self, capsys, tmp_path):
        ckpt_dir = tmp_path / "ckpts"
        argv = [
            "classify", "hyperledger", "--replicas", "3", "--duration", "40",
            "--seed", "3",
        ]
        assert main(argv) == 0
        clean_out = capsys.readouterr().out
        assert main(
            argv + ["--checkpoint-every", "150", "--checkpoint-dir", str(ckpt_dir)]
        ) == 0
        checkpointed_out = capsys.readouterr().out
        # Checkpointing must not perturb the classification itself.
        assert checkpointed_out == clean_out
        primary = [
            path for path in ckpt_dir.glob("*.ckpt")
            if not path.name.endswith(".prev.ckpt")
        ]
        assert len(primary) == 1
        assert main(["resume-run", str(primary[0])]) == 0
        resumed_out = capsys.readouterr().out
        assert resumed_out.startswith("resumed")
        # The resumed run re-derives the exact same classification.
        for line in clean_out.strip().splitlines():
            assert line in resumed_out

    def test_sweep_with_checkpointing_matches_plain_sweep(self, capsys, tmp_path):
        plain_out = tmp_path / "plain.json"
        ckpt_out = tmp_path / "ckpt.json"
        base = [
            "sweep", "--protocol", "hyperledger", "--replicas", "3",
            "--duration", "30", "--seeds", "0:2",
        ]
        assert main(base + ["--out", str(plain_out)]) == 0
        assert main(base + [
            "--out", str(ckpt_out), "--checkpoint-every", "150",
            "--checkpoint-dir", str(tmp_path / "ckpts"),
        ]) == 0
        capsys.readouterr()
        strip = lambda cells: [  # noqa: E731
            {k: v for k, v in cell.items() if k != "timings"} for cell in cells
        ]
        plain = json.loads(plain_out.read_text())
        ckpt = json.loads(ckpt_out.read_text())
        assert strip(plain["cells"]) == strip(ckpt["cells"])
        assert list((tmp_path / "ckpts").glob("*.ckpt"))
