"""Unit tests for the k-Fork-Coherence checker (Definition 3.9 / Theorem 3.2)."""

from __future__ import annotations

import pytest

from repro.core.block import GENESIS, GENESIS_ID, Block
from repro.core.history import HistoryRecorder
from repro.oracle.fork_coherence import (
    check_fork_coherence_from_history,
    check_fork_coherence_from_oracle,
)
from repro.oracle.tape import DeterministicTape, TapeFamily
from repro.oracle.theta import FrugalOracle, ProdigalOracle


def _always(*processes: str) -> TapeFamily:
    family = TapeFamily()
    for p in processes:
        family.set_tape(p, DeterministicTape([True]))
    return family


class TestOracleLevelCheck:
    def test_frugal_oracle_satisfies_its_own_bound(self):
        oracle = FrugalOracle(k=2, tapes=_always("p"))
        for name in ("a", "b", "c", "d"):
            validated = oracle.get_token(GENESIS, Block(name, GENESIS_ID), process="p")
            oracle.consume_token(validated, process="p")
        result = check_fork_coherence_from_oracle(oracle)
        assert result.holds
        assert result.max_forks == 2

    def test_prodigal_oracle_exceeds_small_bounds(self):
        oracle = ProdigalOracle(tapes=_always("p"))
        for i in range(5):
            validated = oracle.get_token(GENESIS, Block(f"x{i}", GENESIS_ID), process="p")
            oracle.consume_token(validated, process="p")
        assert check_fork_coherence_from_oracle(oracle).holds  # bound = ∞
        tighter = check_fork_coherence_from_oracle(oracle, k=2)
        assert not tighter.holds
        assert tighter.max_forks == 5
        assert tighter.violations

    def test_empty_oracle_trivially_holds(self):
        assert check_fork_coherence_from_oracle(FrugalOracle(k=1)).holds


class TestHistoryLevelCheck:
    def _history_with_appends(self, blocks):
        rec = HistoryRecorder()
        for process, block, success in blocks:
            rec.complete(process, "append", block, success)
        return rec.history()

    def test_history_within_bound(self):
        history = self._history_with_appends(
            [
                ("p", Block("a", GENESIS_ID, token="tkn_b0"), True),
                ("q", Block("b", "a", token="tkn_a"), True),
            ]
        )
        assert check_fork_coherence_from_history(history, k=1).holds

    def test_history_exceeding_bound(self):
        history = self._history_with_appends(
            [
                ("p", Block("a", GENESIS_ID, token="tkn_b0"), True),
                ("q", Block("b", GENESIS_ID, token="tkn_b0"), True),
            ]
        )
        result = check_fork_coherence_from_history(history, k=1)
        assert not result.holds
        assert result.per_token["tkn_b0"] == 2

    def test_failed_appends_do_not_count(self):
        history = self._history_with_appends(
            [
                ("p", Block("a", GENESIS_ID, token="tkn_b0"), True),
                ("q", Block("b", GENESIS_ID, token="tkn_b0"), False),
            ]
        )
        assert check_fork_coherence_from_history(history, k=1).holds

    def test_blocks_without_token_group_by_parent(self):
        history = self._history_with_appends(
            [
                ("p", Block("a", GENESIS_ID), True),
                ("q", Block("b", GENESIS_ID), True),
            ]
        )
        result = check_fork_coherence_from_history(history, k=1)
        assert not result.holds
        assert result.per_token[f"parent:{GENESIS_ID}"] == 2

    def test_result_bool_and_max_forks(self):
        history = self._history_with_appends(
            [("p", Block("a", GENESIS_ID, token="t"), True)]
        )
        result = check_fork_coherence_from_history(history, k=3)
        assert bool(result)
        assert result.max_forks == 1
