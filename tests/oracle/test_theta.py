"""Unit tests for the Θ_F / Θ_P token oracles (Definitions 3.5–3.6)."""

from __future__ import annotations

import math

import pytest

from repro.core.block import GENESIS, GENESIS_ID, Block
from repro.core.history import HistoryRecorder
from repro.oracle.tape import DeterministicTape, TapeFamily
from repro.oracle.theta import FrugalOracle, ProdigalOracle, TokenOracle, token_for


def _always_token_family(*processes: str) -> TapeFamily:
    family = TapeFamily()
    for process in processes:
        family.set_tape(process, DeterministicTape([True]))
    return family


class TestConstruction:
    def test_frugal_requires_integer_k_at_least_one(self):
        with pytest.raises(ValueError):
            FrugalOracle(k=0)
        with pytest.raises(ValueError):
            FrugalOracle(k=1.5)  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            FrugalOracle(k=math.inf)  # type: ignore[arg-type]

    def test_prodigal_is_frugal_with_infinite_k(self):
        assert ProdigalOracle().k == math.inf

    def test_base_class_validates_k(self):
        with pytest.raises(ValueError):
            TokenOracle(k=0.5)

    def test_fork_free_flag(self):
        assert FrugalOracle(k=1).is_fork_free
        assert not FrugalOracle(k=2).is_fork_free
        assert not ProdigalOracle().is_fork_free


class TestGetToken:
    def test_successful_get_token_reparents_and_stamps(self):
        oracle = FrugalOracle(k=1, tapes=_always_token_family("p"))
        block = Block("x", "whatever", creator="p")
        validated = oracle.get_token(GENESIS, block, process="p")
        assert validated is not None
        assert validated.parent_id == GENESIS_ID
        assert validated.block.parent_id == GENESIS_ID
        assert validated.block.token == token_for(GENESIS_ID)

    def test_failed_draw_returns_none(self):
        family = TapeFamily()
        family.set_tape("p", DeterministicTape([False], tail=False))
        oracle = ProdigalOracle(tapes=family)
        assert oracle.get_token(GENESIS, Block("x", GENESIS_ID), process="p") is None

    def test_parent_can_be_given_by_id(self):
        oracle = ProdigalOracle(tapes=_always_token_family("p"))
        validated = oracle.get_token("someparent", Block("x", GENESIS_ID), process="p")
        assert validated is not None and validated.parent_id == "someparent"

    def test_granted_counts_tracked(self):
        oracle = ProdigalOracle(tapes=_always_token_family("p"))
        for i in range(3):
            oracle.get_token(GENESIS, Block(f"x{i}", GENESIS_ID), process="p")
        assert oracle.granted_counts()[GENESIS_ID] == 3


class TestConsumeToken:
    def test_frugal_k1_accepts_only_first_block(self):
        oracle = FrugalOracle(k=1, tapes=_always_token_family("p", "q"))
        v1 = oracle.get_token(GENESIS, Block("x", GENESIS_ID), process="p")
        v2 = oracle.get_token(GENESIS, Block("y", GENESIS_ID), process="q")
        first = oracle.consume_token(v1, process="p")
        second = oracle.consume_token(v2, process="q")
        assert [b.block_id for b in first] == ["x"]
        assert [b.block_id for b in second] == ["x"]  # y was rejected
        assert oracle.consumed_counts()[GENESIS_ID] == 1

    def test_frugal_k2_accepts_two_blocks(self):
        oracle = FrugalOracle(k=2, tapes=_always_token_family("p"))
        for name in ("x", "y", "z"):
            validated = oracle.get_token(GENESIS, Block(name, GENESIS_ID), process="p")
            oracle.consume_token(validated, process="p")
        assert oracle.consumed_counts()[GENESIS_ID] == 2

    def test_prodigal_accepts_everything(self):
        oracle = ProdigalOracle(tapes=_always_token_family("p"))
        for i in range(10):
            validated = oracle.get_token(GENESIS, Block(f"x{i}", GENESIS_ID), process="p")
            oracle.consume_token(validated, process="p")
        assert oracle.consumed_counts()[GENESIS_ID] == 10

    def test_consume_is_idempotent_per_block(self):
        oracle = FrugalOracle(k=1, tapes=_always_token_family("p"))
        validated = oracle.get_token(GENESIS, Block("x", GENESIS_ID), process="p")
        oracle.consume_token(validated, process="p")
        again = oracle.consume_token(validated, process="p")
        assert len(again) == 1

    def test_consumed_for_returns_current_set(self):
        oracle = ProdigalOracle(tapes=_always_token_family("p"))
        assert oracle.consumed_for(GENESIS_ID) == ()
        validated = oracle.get_token(GENESIS, Block("x", GENESIS_ID), process="p")
        oracle.consume_token(validated, process="p")
        assert [b.block_id for b in oracle.consumed_for(GENESIS_ID)] == ["x"]

    def test_independent_parents_have_independent_buckets(self):
        oracle = FrugalOracle(k=1, tapes=_always_token_family("p"))
        v1 = oracle.get_token(GENESIS, Block("x", GENESIS_ID), process="p")
        oracle.consume_token(v1, process="p")
        v2 = oracle.get_token("x", Block("y", "x"), process="p")
        oracle.consume_token(v2, process="p")
        assert oracle.consumed_counts() == {GENESIS_ID: 1, "x": 1}


class TestMeritIntegration:
    def test_low_merit_process_rarely_wins(self):
        family = TapeFamily(seed=11)
        family.register_merit("weak", 0.02)
        family.register_merit("strong", 0.9)
        oracle = ProdigalOracle(tapes=family)
        weak_wins = sum(
            oracle.get_token(GENESIS, Block(f"w{i}", GENESIS_ID), process="weak") is not None
            for i in range(300)
        )
        strong_wins = sum(
            oracle.get_token(GENESIS, Block(f"s{i}", GENESIS_ID), process="strong") is not None
            for i in range(300)
        )
        assert strong_wins > weak_wins * 3


class TestRecording:
    def test_oracle_operations_are_recorded(self):
        recorder = HistoryRecorder()
        oracle = FrugalOracle(k=1, tapes=_always_token_family("p"), recorder=recorder)
        validated = oracle.get_token(GENESIS, Block("x", GENESIS_ID), process="p")
        oracle.consume_token(validated, process="p")
        history = recorder.history()
        operations = {e.operation for e in history}
        assert {"getToken", "consumeToken"} <= operations
        assert len(history) == 4  # two invocation/response pairs
