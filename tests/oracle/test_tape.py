"""Unit tests for merit tapes and the tape family."""

from __future__ import annotations

import pytest

from repro.oracle.tape import BOTTOM, TOKEN, DeterministicTape, MeritTape, TapeFamily


class TestMeritTape:
    def test_probability_bounds_enforced(self):
        with pytest.raises(ValueError):
            MeritTape(0.0)
        with pytest.raises(ValueError):
            MeritTape(1.5)
        with pytest.raises(ValueError):
            MeritTape(0.5, block_size=0)

    def test_head_does_not_consume(self):
        tape = MeritTape(0.5, seed=1)
        first = tape.head()
        assert tape.head() == first
        assert tape.cells_consumed == 0

    def test_pop_consumes_and_counts(self):
        tape = MeritTape(0.5, seed=1)
        values = [tape.pop() for _ in range(10)]
        assert tape.cells_consumed == 10
        assert all(v in (TOKEN, BOTTOM) for v in values)

    def test_same_seed_same_sequence(self):
        a = MeritTape(0.3, seed=42)
        b = MeritTape(0.3, seed=42)
        assert [a.pop() for _ in range(50)] == [b.pop() for _ in range(50)]

    def test_probability_one_always_grants(self):
        tape = MeritTape(1.0, seed=0)
        assert all(tape.pop() == TOKEN for _ in range(20))

    def test_empirical_rate_tracks_probability(self):
        tape = MeritTape(0.2, seed=7)
        draws = [tape.pop() == TOKEN for _ in range(5000)]
        rate = sum(draws) / len(draws)
        assert 0.15 < rate < 0.25

    def test_refill_crosses_block_boundaries(self):
        tape = MeritTape(0.5, seed=3, block_size=4)
        assert len([tape.pop() for _ in range(10)]) == 10


class TestDeterministicTape:
    def test_pattern_then_tail(self):
        tape = DeterministicTape([False, True], tail=False)
        assert tape.pop() == BOTTOM
        assert tape.pop() == TOKEN
        assert tape.pop() == BOTTOM  # tail

    def test_symbol_pattern_accepted(self):
        tape = DeterministicTape([TOKEN, BOTTOM])
        assert tape.pop() == TOKEN
        assert tape.pop() == BOTTOM

    def test_invalid_cell_rejected(self):
        with pytest.raises(ValueError):
            DeterministicTape(["maybe"])

    def test_cells_consumed(self):
        tape = DeterministicTape([True])
        tape.pop()
        tape.pop()
        assert tape.cells_consumed == 2


class TestTapeFamily:
    def test_lazily_creates_tapes(self):
        family = TapeFamily(seed=1)
        tape = family.tape_of("p1")
        assert family.tape_of("p1") is tape

    def test_merit_registration_and_probability(self):
        family = TapeFamily(probability_scale=0.5)
        family.register_merit("p1", 0.4)
        assert family.merit_of("p1") == 0.4
        assert family.probability_of("p1") == pytest.approx(0.2)

    def test_unknown_process_defaults_to_merit_one(self):
        family = TapeFamily()
        assert family.merit_of("stranger") == 1.0
        assert family.probability_of("stranger") == 1.0

    def test_negative_merit_rejected(self):
        with pytest.raises(ValueError):
            TapeFamily().register_merit("p", -0.1)

    def test_probability_clipped_to_minimum(self):
        family = TapeFamily(min_probability=1e-3)
        family.register_merit("p", 0.0)
        assert family.probability_of("p") == pytest.approx(1e-3)

    def test_injected_tape_takes_precedence(self):
        family = TapeFamily()
        family.set_tape("p1", DeterministicTape([False], tail=False))
        assert family.draw("p1") is False
        assert family.draw("p1") is False

    def test_draw_uses_process_tape(self):
        family = TapeFamily()
        family.set_tape("winner", DeterministicTape([True]))
        family.set_tape("loser", DeterministicTape([False], tail=False))
        assert family.draw("winner") is True
        assert family.draw("loser") is False

    def test_processes_lists_known_processes(self):
        family = TapeFamily()
        family.register_merit("a", 0.5)
        family.set_tape("b", DeterministicTape([True]))
        assert family.processes() == ("a", "b")

    def test_deterministic_across_family_instances(self):
        draws1 = [TapeFamily(seed=9).draw("px") for _ in range(1)]
        draws2 = [TapeFamily(seed=9).draw("px") for _ in range(1)]
        assert draws1 == draws2
