"""Unit tests for the refinement R(BT-ADT, Θ) (Definition 3.7)."""

from __future__ import annotations

import pytest

from repro.core.block import GENESIS_ID, Block
from repro.core.history import HistoryRecorder
from repro.core.validity import MembershipValidity
from repro.oracle.refinement import RefinedBTADT
from repro.oracle.tape import DeterministicTape, TapeFamily
from repro.oracle.theta import FrugalOracle, ProdigalOracle


def _oracle_with_pattern(process: str, pattern, k=None):
    family = TapeFamily()
    family.set_tape(process, DeterministicTape(pattern))
    if k is None:
        return ProdigalOracle(tapes=family)
    return FrugalOracle(k=k, tapes=family)


class TestRefinedAppend:
    def test_append_retries_get_token_until_granted(self):
        oracle = _oracle_with_pattern("p", [False, False, True])
        adt = RefinedBTADT(oracle, process="p")
        outcome = adt.append_detailed(Block("x", GENESIS_ID, creator="p"))
        assert outcome.success
        assert outcome.attempts == 3
        assert adt.read().ids == (GENESIS_ID, "x")

    def test_append_fails_when_attempts_exhausted(self):
        family = TapeFamily()
        family.set_tape("p", DeterministicTape([False], tail=False))
        adt = RefinedBTADT(ProdigalOracle(tapes=family), process="p", max_token_attempts=5)
        outcome = adt.append_detailed(Block("x", GENESIS_ID, creator="p"))
        assert not outcome.success
        assert outcome.attempts == 5
        assert adt.read().ids == (GENESIS_ID,)

    def test_appended_block_carries_token_and_selected_parent(self):
        oracle = _oracle_with_pattern("p", [True])
        adt = RefinedBTADT(oracle, process="p")
        adt.append(Block("x", "bogus_parent", creator="p"))
        block = adt.tree.get("x")
        assert block.parent_id == GENESIS_ID
        assert block.token == f"tkn_{GENESIS_ID}"

    def test_chained_appends_extend_the_selected_chain(self):
        oracle = _oracle_with_pattern("p", [True])
        adt = RefinedBTADT(oracle, process="p")
        adt.append(Block("x", GENESIS_ID, creator="p"))
        adt.append(Block("y", GENESIS_ID, creator="p"))
        assert adt.read().ids == (GENESIS_ID, "x", "y")
        assert adt.k == float("inf")

    def test_application_predicate_can_still_reject(self):
        oracle = _oracle_with_pattern("p", [True])
        adt = RefinedBTADT(
            oracle, predicate=MembershipValidity.of(["allowed"]), process="p"
        )
        assert adt.append(Block("forbidden", GENESIS_ID, creator="p")) is False
        assert adt.append(Block("allowed", GENESIS_ID, creator="p")) is True

    def test_invalid_max_attempts_rejected(self):
        with pytest.raises(ValueError):
            RefinedBTADT(ProdigalOracle(), max_token_attempts=0)


class TestFrugalInteraction:
    def test_two_refined_adts_sharing_a_k1_oracle_cannot_fork(self):
        family = TapeFamily()
        family.set_tape("p", DeterministicTape([True]))
        family.set_tape("q", DeterministicTape([True]))
        oracle = FrugalOracle(k=1, tapes=family)
        adt_p = RefinedBTADT(oracle, process="p")
        adt_q = RefinedBTADT(oracle, process="q")
        assert adt_p.append(Block("x", GENESIS_ID, creator="p")) is True
        # q still believes the tip is b0 (it has not adopted x), so its
        # append targets the same parent and must lose the single token.
        assert adt_q.append(Block("y", GENESIS_ID, creator="q")) is False
        assert oracle.consumed_counts()[GENESIS_ID] == 1

    def test_prodigal_oracle_allows_the_same_race_to_fork(self):
        family = TapeFamily()
        family.set_tape("p", DeterministicTape([True]))
        family.set_tape("q", DeterministicTape([True]))
        oracle = ProdigalOracle(tapes=family)
        adt_p = RefinedBTADT(oracle, process="p")
        adt_q = RefinedBTADT(oracle, process="q")
        assert adt_p.append(Block("x", GENESIS_ID, creator="p")) is True
        assert adt_q.append(Block("y", GENESIS_ID, creator="q")) is True
        assert oracle.consumed_counts()[GENESIS_ID] == 2


class TestAdoption:
    def test_adopt_inserts_foreign_block_once(self):
        oracle = _oracle_with_pattern("p", [True])
        adt = RefinedBTADT(oracle, process="p")
        foreign = Block("z", GENESIS_ID, creator="q", token="tkn_b0")
        assert adt.adopt(foreign) is True
        assert adt.adopt(foreign) is False
        assert "z" in adt.tree


class TestRecording:
    def test_refined_operations_recorded(self):
        recorder = HistoryRecorder()
        oracle = _oracle_with_pattern("p", [False, True])
        adt = RefinedBTADT(oracle, recorder=recorder, process="p")
        adt.append(Block("x", GENESIS_ID, creator="p"))
        adt.read()
        history = recorder.history()
        assert len(history.append_invocations("p")) == 1
        assert len(history.read_responses("p")) == 1
        assert history.append_responses("p")[0].output is True
