"""Unit tests for the pure transducer view of the oracles (Figure 6)."""

from __future__ import annotations

import pytest

from repro.core.adt import Operation, is_sequential_history, replay
from repro.oracle.theta_adt import ConsumeToken, GetToken, ProdigalADT, ThetaADT


def _get(parent: str, obj: str, process: str = "p") -> Operation:
    return Operation.invocation("getToken", GetToken(parent, obj, process))


def _get_out(parent: str, obj: str, output, process: str = "p") -> Operation:
    return Operation.with_output("getToken", GetToken(parent, obj, process), output)


def _consume_out(parent: str, obj: str, output) -> Operation:
    return Operation.with_output("consumeToken", ConsumeToken(parent, obj), output)


class TestConstruction:
    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            ThetaADT(k=0)

    def test_initial_state_has_empty_buckets(self):
        state = ThetaADT(k=1, tapes={"p": (True,)}).initial_state()
        assert state.bucket("b0") == frozenset()
        assert state.tape_head("p") is True
        assert state.tape_head("stranger") is False


class TestFigure6Path:
    def test_figure6_word_is_a_sequential_history(self):
        # Figure 6: a failed draw (⊥), then a granted token, then a consume
        # that stores the validated object and returns the singleton set.
        adt = ThetaADT(k=1, tapes={"p": (False, True)})
        word = [
            _get_out("obj1", "objk", None),
            _get_out("obj1", "objk", "objk^tkn_obj1"),
            _consume_out("obj1", "objk", frozenset({"objk"})),
        ]
        assert is_sequential_history(adt, word)

    def test_wrong_get_token_output_rejected(self):
        adt = ThetaADT(k=1, tapes={"p": (False,)})
        word = [_get_out("obj1", "objk", "objk^tkn_obj1")]  # tape says ⊥
        assert not is_sequential_history(adt, word)

    def test_consume_beyond_k_keeps_bucket_and_output(self):
        adt = ThetaADT(k=1, tapes={"p": (True, True)})
        word = [
            _get_out("b0", "x", "x^tkn_b0"),
            _consume_out("b0", "x", frozenset({"x"})),
            _get_out("b0", "y", "y^tkn_b0"),
            _consume_out("b0", "y", frozenset({"x"})),  # y is rejected, K unchanged
        ]
        states = replay(adt, word)
        assert states[-1].bucket("b0") == frozenset({"x"})

    def test_prodigal_accepts_unboundedly(self):
        adt = ProdigalADT(tapes={"p": tuple([True] * 5)})
        word = []
        expected = set()
        for i in range(5):
            name = f"blk{i}"
            expected.add(name)
            word.append(_get_out("b0", name, f"{name}^tkn_b0"))
            word.append(_consume_out("b0", name, frozenset(expected)))
        assert is_sequential_history(adt, word)


class TestTransitions:
    def test_get_token_pops_the_tape(self):
        adt = ThetaADT(k=1, tapes={"p": (True, False)})
        state = adt.initial_state()
        state = adt.transition(state, _get("b0", "x").symbol)
        assert state.tape_head("p") is False
        state = adt.transition(state, _get("b0", "x").symbol)
        assert state.tape_head("p") is False  # exhausted tape stays at ⊥

    def test_transitions_do_not_mutate_previous_states(self):
        adt = ThetaADT(k=2, tapes={"p": (True,)})
        initial = adt.initial_state()
        consumed = adt.transition(initial, Operation.invocation(
            "consumeToken", ConsumeToken("b0", "x")).symbol)
        assert initial.bucket("b0") == frozenset()
        assert consumed.bucket("b0") == frozenset({"x"})

    def test_unknown_symbol_rejected(self):
        adt = ThetaADT(k=1)
        with pytest.raises(ValueError):
            adt.output(adt.initial_state(), Operation.invocation("mine", None).symbol)
        with pytest.raises(ValueError):
            adt.transition(adt.initial_state(), Operation.invocation("mine", None).symbol)

    def test_argument_types_are_checked(self):
        adt = ThetaADT(k=1)
        with pytest.raises(TypeError):
            adt.output(adt.initial_state(), Operation.invocation("getToken", "bad").symbol)
        with pytest.raises(TypeError):
            adt.output(adt.initial_state(), Operation.invocation("consumeToken", "bad").symbol)
