"""End-to-end checks of the paper's theorems on generated executions.

Each test class corresponds to one theorem (or group of theorems) and
re-derives its statement empirically from runs of the library — these are
the same checks the benchmark harness reports on, kept here in smaller
configurations so the test suite stays fast.
"""

from __future__ import annotations

import math

import pytest

from repro.core.block import GENESIS, GENESIS_ID, Block
from repro.core.consistency import check_eventual_consistency, check_strong_consistency
from repro.core.hierarchy import Refinement, consensus_number
from repro.concurrent.consensus_object import check_consensus_properties
from repro.concurrent.reductions import OracleConsensus, SnapshotTokenStore
from repro.concurrent.scheduler import Scheduler
from repro.network.channels import LossyChannel, SynchronousChannel, TargetedLossChannel
from repro.network.update_agreement import (
    check_light_reliable_communication,
    check_update_agreement,
)
from repro.oracle.fork_coherence import check_fork_coherence_from_oracle
from repro.oracle.tape import DeterministicTape, TapeFamily
from repro.oracle.theta import FrugalOracle, ProdigalOracle
from repro.protocols.classification import classify_run
from repro.protocols.hyperledger import run_hyperledger
from repro.protocols.nakamoto import run_bitcoin
from repro.workload.scenarios import generate_chain_history, generate_forked_history


class TestTheorem31SCSubsetEC:
    """Theorem 3.1: H_SC ⊂ H_EC (strict inclusion)."""

    def test_every_sc_history_is_ec(self):
        for seed in range(10):
            history = generate_chain_history(n_processes=3, chain_length=6, seed=seed)
            assert check_strong_consistency(history).holds
            assert check_eventual_consistency(history).holds

    def test_inclusion_is_strict(self):
        witness = generate_forked_history(branch_length=3, resolve=True, seed=1)
        assert check_eventual_consistency(witness).holds
        assert not check_strong_consistency(witness).holds


class TestTheorem32ForkCoherence:
    """Theorem 3.2: the Θ_F composition satisfies k-Fork Coherence."""

    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_fork_coherence_for_various_k(self, k):
        family = TapeFamily()
        family.set_tape("p", DeterministicTape([True]))
        oracle = FrugalOracle(k=k, tapes=family)
        for i in range(3 * k):
            validated = oracle.get_token(GENESIS, Block(f"x{i}", GENESIS_ID, creator="p"), process="p")
            oracle.consume_token(validated, process="p")
        result = check_fork_coherence_from_oracle(oracle)
        assert result.holds
        assert result.max_forks == k


class TestTheorems42And43ConsensusNumbers:
    """Theorems 4.2/4.3: Θ_{F,1} solves consensus; Θ_P does not force agreement."""

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_frugal_k1_solves_consensus_for_any_n(self, n):
        family = TapeFamily()
        processes = [f"p{i}" for i in range(n)]
        for p in processes:
            family.set_tape(p, DeterministicTape([True]))
        consensus = OracleConsensus(FrugalOracle(k=1, tapes=family))
        scheduler = Scheduler(seed=n, strategy="random")
        for p in processes:
            scheduler.spawn(p, consensus.propose_steps(p, Block(f"blk_{p}", GENESIS_ID, creator=p)))
        result = scheduler.run()
        decided = {result.results[p].block_id for p in processes}
        assert len(decided) == 1
        check_consensus_properties(consensus, validator=lambda v: v.token is not None)

    def test_declared_consensus_numbers(self):
        assert consensus_number(Refinement.sc_frugal(1)) == math.inf
        assert consensus_number(Refinement.ec_prodigal()) == 1

    def test_prodigal_snapshot_construction_does_not_force_agreement(self):
        store = SnapshotTokenStore(["a", "b"])
        first_view = store.consume_token("a", "token_a")
        second_view = store.consume_token("b", "token_b")
        # Both consumers succeed (unbounded k) and their views differ — no
        # single winner is ever imposed by the object.
        assert first_view != second_view
        assert set(store.read_tokens()) == {"token_a", "token_b"}


class TestTheorems46And47UpdateAgreementNecessity:
    """Theorems 4.6/4.7: dropping an update breaks Eventual Consistency."""

    def _run(self, channel, use_lrc):
        return run_bitcoin(
            n=4,
            duration=120.0,
            token_rate=0.4,
            seed=23,
            channel=channel,
            use_lrc=use_lrc,
        )

    def test_reliable_channels_satisfy_update_agreement_and_ec(self):
        run = self._run(SynchronousChannel(delta=1.0, seed=23), use_lrc=True)
        agreement = check_update_agreement(
            run.history, processes=run.correct_replicas, block_creators=run.block_creators()
        )
        assert agreement.holds
        assert check_eventual_consistency(run.history.without_failed_appends()).holds

    def test_targeted_loss_breaks_r3_and_eventual_prefix(self):
        # Every message addressed to p3 is dropped and p3's own blocks never
        # reach anyone: p3's replica permanently diverges.
        channel = TargetedLossChannel(
            SynchronousChannel(delta=1.0, seed=24),
            drop_if=lambda s, r, t: r == "p3" or s == "p3",
        )
        run = self._run(channel, use_lrc=False)
        agreement = check_update_agreement(
            run.history, processes=run.correct_replicas, block_creators=run.block_creators()
        )
        assert not agreement.r3_holds
        lrc = check_light_reliable_communication(run.history, run.correct_replicas)
        assert not lrc.holds
        assert not check_eventual_consistency(run.history.without_failed_appends()).holds

    def test_heavy_random_loss_without_relay_breaks_convergence(self):
        channel = LossyChannel(SynchronousChannel(delta=1.0, seed=25), 0.95, seed=25)
        run = self._run(channel, use_lrc=False)
        agreement = check_update_agreement(
            run.history, processes=run.correct_replicas, block_creators=run.block_creators()
        )
        assert not agreement.holds


class TestTheorem48StrongPrefixImpossibility:
    """Theorem 4.8: with a fork-allowing oracle, Strong Prefix breaks in
    message passing even with zero faults and synchronous channels."""

    def test_concurrent_appends_violate_strong_prefix(self):
        # Fork-prone proof-of-work regime: two correct processes append
        # concurrently under the prodigal oracle; their reads diverge.
        run = run_bitcoin(
            n=4,
            duration=200.0,
            token_rate=0.6,
            seed=31,
            channel=SynchronousChannel(delta=4.0, min_delay=1.0, seed=31),
        )
        history = run.history.without_failed_appends()
        assert not check_strong_consistency(history).holds
        # ... while the same execution still satisfies Eventual Consistency
        # (the weaker criterion the paper assigns to these systems).
        assert check_eventual_consistency(history).holds

    def test_fork_free_oracle_preserves_strong_prefix(self):
        # The contrast: the k=1 oracle (consensus-based system) keeps Strong
        # Prefix in the same message-passing setting.
        run = run_hyperledger(n=4, duration=100.0, seed=31)
        assert check_strong_consistency(run.history.without_failed_appends()).holds

    def test_classifier_reflects_the_theorem(self):
        run = run_bitcoin(
            n=4,
            duration=200.0,
            token_rate=0.6,
            seed=32,
            channel=SynchronousChannel(delta=4.0, min_delay=1.0, seed=32),
        )
        result = classify_run(run)
        assert result.refinement is not None
        assert not result.refinement.message_passing_implementable or (
            result.refinement.consistency == "EC"
        )
