"""Cross-module integration tests exercising the whole stack."""

from __future__ import annotations

import pytest

from repro.analysis.convergence import convergence_summary
from repro.analysis.forks import fork_statistics, merge_statistics
from repro.core.consistency import check_eventual_consistency, check_strong_consistency
from repro.core.hierarchy import refinement_hierarchy, is_weaker_or_equal
from repro.network.channels import SynchronousChannel
from repro.oracle.fork_coherence import check_fork_coherence_from_oracle
from repro.protocols.classification import classify_run
from repro.protocols.ghost import run_ethereum
from repro.protocols.nakamoto import run_bitcoin
from repro.protocols.redbelly import run_redbelly
from repro.workload.merit import zipf_merit


class TestPowPipeline:
    @pytest.fixture(scope="class")
    def pow_run(self):
        return run_bitcoin(
            n=5,
            duration=150.0,
            token_rate=0.4,
            seed=41,
            merit=zipf_merit(5, exponent=1.0),
            channel=SynchronousChannel(delta=2.0, seed=41),
        )

    def test_history_and_trees_are_consistent_with_each_other(self, pow_run):
        # Every block present in any replica's final chain was appended in
        # the history by its creator.
        appended = {
            inv.argument.block_id for inv in pow_run.history.append_invocations()
        }
        for chain in pow_run.final_chains().values():
            for block in chain:
                if not block.is_genesis:
                    assert block.block_id in appended

    def test_fork_statistics_and_coherence_agree(self, pow_run):
        stats = {
            pid: fork_statistics(replica.tree)
            for pid, replica in pow_run.replicas.items()
        }
        merged = merge_statistics(stats)
        assert merged["replicas"] == 5.0
        coherence = check_fork_coherence_from_oracle(pow_run.oracle)
        assert coherence.holds  # bound is infinite
        # If any replica saw a fork, the oracle must have consumed more than
        # one token for some parent.
        if merged["mean_forks"] > 0:
            assert coherence.max_forks >= 2

    def test_convergence_summary_after_drain(self, pow_run):
        summary = convergence_summary(pow_run.final_chains())
        assert summary.agreement_ratio == 1.0
        assert summary.max_divergence == 0.0

    def test_classification_is_coherent_with_hierarchy(self, pow_run):
        result = classify_run(pow_run)
        assert result.refinement is not None
        hierarchy = refinement_hierarchy()
        # The measured refinement is one of the vertices of Figure 8.
        assert any(result.refinement == vertex for vertex in hierarchy)


class TestMixedSystems:
    def test_ethereum_and_bitcoin_share_the_ec_class(self):
        eth = run_ethereum(n=4, duration=100.0, token_rate=0.5, seed=42,
                           channel=SynchronousChannel(delta=2.0, seed=42))
        btc = run_bitcoin(n=4, duration=100.0, token_rate=0.5, seed=42,
                          channel=SynchronousChannel(delta=2.0, seed=42))
        for run in (eth, btc):
            assert check_eventual_consistency(run.history.without_failed_appends()).holds

    def test_consortium_chain_is_stronger_than_pow_chain(self):
        consortium = classify_run(run_redbelly(n=5, duration=80.0, seed=43))
        pow_chain = classify_run(
            run_bitcoin(n=5, duration=150.0, token_rate=0.5, seed=43,
                        channel=SynchronousChannel(delta=3.0, seed=43))
        )
        assert consortium.refinement is not None and pow_chain.refinement is not None
        assert is_weaker_or_equal(pow_chain.refinement, consortium.refinement)
        assert not is_weaker_or_equal(consortium.refinement, pow_chain.refinement)

    def test_strong_system_history_also_passes_ec(self):
        run = run_redbelly(n=5, duration=80.0, seed=44)
        history = run.history.without_failed_appends()
        assert check_strong_consistency(history).holds
        assert check_eventual_consistency(history).holds
