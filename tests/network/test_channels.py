"""Unit tests for the channel models."""

from __future__ import annotations

import pytest

from repro.network.channels import (
    AsynchronousChannel,
    LossyChannel,
    PartiallySynchronousChannel,
    SynchronousChannel,
    TargetedLossChannel,
)


class TestSynchronousChannel:
    def test_delays_respect_delta(self):
        channel = SynchronousChannel(delta=2.0, min_delay=0.5, seed=1)
        delays = [channel.delay_for("a", "b", 0.0) for _ in range(200)]
        assert all(0.5 <= d <= 2.0 for d in delays)

    def test_self_delivery_is_immediate(self):
        assert SynchronousChannel().delay_for("a", "a", 0.0) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SynchronousChannel(delta=0)
        with pytest.raises(ValueError):
            SynchronousChannel(delta=1.0, min_delay=2.0)

    def test_seed_determinism(self):
        a = SynchronousChannel(delta=1.0, seed=5)
        b = SynchronousChannel(delta=1.0, seed=5)
        assert [a.delay_for("x", "y", 0.0) for _ in range(10)] == [
            b.delay_for("x", "y", 0.0) for _ in range(10)
        ]


class TestAsynchronousChannel:
    def test_never_drops(self):
        channel = AsynchronousChannel(mean_delay=1.0, seed=2)
        assert all(
            channel.delay_for("a", "b", 0.0) is not None for _ in range(100)
        )

    def test_tail_inflates_some_delays(self):
        channel = AsynchronousChannel(
            mean_delay=1.0, tail_probability=0.5, tail_factor=100.0, seed=3
        )
        delays = [channel.delay_for("a", "b", 0.0) for _ in range(200)]
        assert max(delays) > 20.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AsynchronousChannel(mean_delay=0)
        with pytest.raises(ValueError):
            AsynchronousChannel(tail_probability=2.0)

    def test_self_delivery_immediate(self):
        assert AsynchronousChannel().delay_for("a", "a", 0.0) == 0.0


class TestPartiallySynchronousChannel:
    def test_bounded_after_gst(self):
        channel = PartiallySynchronousChannel(gst=10.0, delta=1.0, seed=4)
        post = [channel.delay_for("a", "b", 20.0) for _ in range(100)]
        assert all(d <= 1.0 for d in post)

    def test_unbounded_before_gst(self):
        channel = PartiallySynchronousChannel(gst=1000.0, delta=1.0, pre_gst_mean=10.0, seed=4)
        pre = [channel.delay_for("a", "b", 0.0) for _ in range(200)]
        assert max(pre) > 1.0

    def test_negative_gst_rejected(self):
        with pytest.raises(ValueError):
            PartiallySynchronousChannel(gst=-1.0)


class TestLossyChannel:
    def test_drop_probability_zero_never_drops(self):
        channel = LossyChannel(SynchronousChannel(seed=1), 0.0, seed=1)
        assert all(channel.delay_for("a", "b", 0.0) is not None for _ in range(100))

    def test_drop_probability_one_drops_everything(self):
        channel = LossyChannel(SynchronousChannel(seed=1), 1.0, seed=1)
        assert all(channel.delay_for("a", "b", 0.0) is None for _ in range(100))
        assert channel.dropped == 100

    def test_intermediate_drop_rate(self):
        channel = LossyChannel(SynchronousChannel(seed=1), 0.3, seed=2)
        outcomes = [channel.delay_for("a", "b", 0.0) is None for _ in range(2000)]
        rate = sum(outcomes) / len(outcomes)
        assert 0.25 < rate < 0.35

    def test_self_messages_never_dropped(self):
        channel = LossyChannel(SynchronousChannel(seed=1), 1.0, seed=1)
        assert channel.delay_for("a", "a", 0.0) is not None

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            LossyChannel(SynchronousChannel(), 1.5)


class TestTargetedLossChannel:
    def test_predicate_controls_drops(self):
        channel = TargetedLossChannel(
            SynchronousChannel(seed=1), drop_if=lambda s, r, t: r == "victim"
        )
        assert channel.delay_for("a", "victim", 0.0) is None
        assert channel.delay_for("a", "other", 0.0) is not None
        assert channel.dropped == 1

    def test_self_messages_exempt(self):
        channel = TargetedLossChannel(
            SynchronousChannel(seed=1), drop_if=lambda s, r, t: True
        )
        assert channel.delay_for("x", "x", 0.0) is not None
