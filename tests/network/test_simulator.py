"""Unit tests for the discrete-event simulator and network fabric."""

from __future__ import annotations

import pytest

from repro.network.channels import SynchronousChannel
from repro.network.process import Process
from repro.network.simulator import Message, Network, Simulator


class Echo(Process):
    """Test process that logs every delivery and can ping a peer."""

    def __init__(self, pid: str) -> None:
        super().__init__(pid)
        self.received: list[Message] = []

    def on_message(self, message: Message) -> None:
        self.received.append(message)


class TestSimulator:
    def test_events_run_in_timestamp_order(self):
        simulator = Simulator()
        log: list[str] = []
        simulator.schedule(5.0, lambda: log.append("late"))
        simulator.schedule(1.0, lambda: log.append("early"))
        simulator.run()
        assert log == ["early", "late"]
        assert simulator.now == 5.0

    def test_equal_timestamps_preserve_insertion_order(self):
        simulator = Simulator()
        log: list[int] = []
        for i in range(5):
            simulator.schedule(1.0, lambda i=i: log.append(i))
        simulator.run()
        assert log == [0, 1, 2, 3, 4]

    def test_run_until_leaves_later_events_pending(self):
        simulator = Simulator()
        log: list[str] = []
        simulator.schedule(1.0, lambda: log.append("a"))
        simulator.schedule(10.0, lambda: log.append("b"))
        simulator.run(until=5.0)
        assert log == ["a"]
        assert simulator.pending == 1
        assert simulator.now == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        simulator = Simulator()
        log: list[str] = []
        simulator.schedule_at(3.0, lambda: log.append("x"))
        with pytest.raises(ValueError):
            simulator.schedule_at(-1.0, lambda: None)
        simulator.run()
        assert log == ["x"] and simulator.now == 3.0

    def test_event_cascades_are_processed(self):
        simulator = Simulator()
        log: list[float] = []

        def first():
            log.append(simulator.now)
            simulator.schedule(2.0, second)

        def second():
            log.append(simulator.now)

        simulator.schedule(1.0, first)
        simulator.run()
        assert log == [1.0, 3.0]

    def test_max_events_guard(self):
        simulator = Simulator()

        def rearm():
            simulator.schedule(1.0, rearm)

        simulator.schedule(0.0, rearm)
        with pytest.raises(RuntimeError):
            simulator.run(max_events=100)

    def test_max_events_exhaustion_leaves_queue_and_counts(self):
        """Exhaustion raises with the queue non-empty and the work counted."""
        simulator = Simulator()

        def rearm():
            simulator.schedule(1.0, rearm)
            simulator.schedule(1.0, lambda: None)

        simulator.schedule(0.0, rearm)
        with pytest.raises(RuntimeError, match="did not quiesce"):
            simulator.run(max_events=50)
        assert simulator.pending > 0
        assert simulator.events_processed == 50

    def test_event_exactly_at_until_is_processed(self):
        simulator = Simulator()
        log: list[str] = []
        simulator.schedule(5.0, lambda: log.append("at"))
        simulator.schedule(5.0 + 1e-9, lambda: log.append("after"))
        simulator.run(until=5.0)
        assert log == ["at"]
        assert simulator.pending == 1
        assert simulator.now == 5.0

    def test_schedule_at_in_the_past_rejected_after_clock_advance(self):
        simulator = Simulator()
        simulator.schedule(4.0, lambda: None)
        simulator.run()
        assert simulator.now == 4.0
        with pytest.raises(ValueError):
            simulator.schedule_at(3.0, lambda: None)
        # The present is still schedulable.
        simulator.schedule_at(4.0, lambda: None)
        assert simulator.pending == 1

    def test_schedule_many_bulk_insert(self):
        simulator = Simulator()
        log: list[str] = []
        count = simulator.schedule_many(
            (t, log.append, tag) for t, tag in ((2.0, "b"), (1.0, "a"), (2.0, "c"))
        )
        assert count == 3
        simulator.run()
        # Timestamp order, ties in insertion order.
        assert log == ["a", "b", "c"]
        assert simulator.now == 2.0

    def test_schedule_many_rejects_past_times(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        with pytest.raises(ValueError):
            simulator.schedule_many([(0.5, lambda _: None, "x")])

    def test_schedule_many_ties_with_schedule_preserve_global_order(self):
        """schedule_many shares the sequence counter with schedule/call_at."""
        simulator = Simulator()
        log: list[str] = []
        simulator.schedule(1.0, lambda: log.append("closure"))
        simulator.schedule_many([(1.0, log.append, "bulk")])
        simulator.call_at(1.0, log.append, "call_at")
        simulator.run()
        assert log == ["closure", "bulk", "call_at"]


class TestNetwork:
    def _network(self, delta: float = 1.0) -> tuple[Network, Echo, Echo]:
        network = Network(Simulator(), SynchronousChannel(delta=delta, seed=1))
        a, b = Echo("a"), Echo("b")
        network.register(a)
        network.register(b)
        return network, a, b

    def test_send_and_deliver(self):
        network, a, b = self._network()
        network.send("a", "b", "ping", {"x": 1})
        network.run()
        assert len(b.received) == 1
        assert b.received[0].kind == "ping"
        assert network.messages_delivered == 1

    def test_unknown_receiver_rejected(self):
        network, _, _ = self._network()
        with pytest.raises(KeyError):
            network.send("a", "ghost", "ping", None)

    def test_duplicate_registration_rejected(self):
        network, a, _ = self._network()
        with pytest.raises(ValueError):
            network.register(a)

    def test_broadcast_reaches_everyone(self):
        network, a, b = self._network()
        network.broadcast("a", "hello", None, include_self=True)
        network.run()
        assert len(a.received) == 1
        assert len(b.received) == 1

    def test_broadcast_can_exclude_self(self):
        network, a, b = self._network()
        network.broadcast("a", "hello", None, include_self=False)
        network.run()
        assert len(a.received) == 0
        assert len(b.received) == 1

    def test_crashed_process_receives_nothing(self):
        network, a, b = self._network()
        b.crash()
        network.send("a", "b", "ping", None)
        network.run()
        assert b.received == []

    def test_correct_process_ids_excludes_crashed(self):
        network, a, b = self._network()
        b.crash()
        assert network.correct_process_ids() == ("a",)

    def test_history_accessor_returns_recorded_events(self):
        network, a, _ = self._network()
        network.recorder.send("a", "b0", "x")
        assert len(network.history()) == 1

    def test_process_helpers(self):
        network, a, b = self._network()
        assert network.process("a") is a
        assert set(network.process_ids) == {"a", "b"}
        assert a.now == 0.0


class TestMulticast:
    def _network(self, n: int = 4, batched: bool = True) -> tuple[Network, list[Echo]]:
        network = Network(
            Simulator(), SynchronousChannel(delta=1.0, seed=2), batched=batched
        )
        processes = [Echo(f"p{i}") for i in range(n)]
        for process in processes:
            network.register(process)
        return network, processes

    def test_multicast_reaches_listed_receivers(self):
        network, processes = self._network()
        delivered = network.multicast("p0", ["p1", "p3"], "ping", 7)
        assert delivered == 2
        network.run()
        assert len(processes[1].received) == 1
        assert processes[1].received[0].payload == 7
        assert processes[2].received == []
        assert len(processes[3].received) == 1

    def test_multicast_unknown_receiver_rejected(self):
        network, _ = self._network()
        with pytest.raises(KeyError):
            network.multicast("p0", ["p1", "ghost"], "ping", None)

    def test_multicast_skips_crashed_receivers_at_delivery(self):
        network, processes = self._network()
        network.multicast("p0", ["p1", "p2"], "ping", None)
        processes[1].crash()
        network.run()
        assert processes[1].received == []
        assert len(processes[2].received) == 1
        assert network.messages_delivered == 1

    def test_shared_envelope_carries_sender_kind_payload(self):
        network, processes = self._network()
        network.broadcast("p0", "hello", {"x": 1}, include_self=False)
        network.run()
        for process in processes[1:]:
            (message,) = process.received
            assert message.sender == "p0"
            assert message.kind == "hello"
            assert message.payload == {"x": 1}

    def test_registration_after_broadcast_invalidates_receiver_cache(self):
        network, processes = self._network(n=2)
        network.broadcast("p0", "hello", None, include_self=False)
        late = Echo("late")
        network.register(late)
        network.broadcast("p0", "hello", None, include_self=False)
        network.run()
        assert len(processes[1].received) == 2
        assert len(late.received) == 1

    def test_process_multicast_helper(self):
        network, processes = self._network()
        sent = processes[0].multicast(["p2"], "ping", None)
        assert sent == 1
        network.run()
        assert len(processes[2].received) == 1

    def test_multicast_honours_the_reference_switch(self):
        """batched=False covers the multicast API too, not just broadcast."""
        from repro.network.channels import LossyChannel

        def build(batched: bool):
            channel = LossyChannel(
                SynchronousChannel(delta=1.0, seed=4), 0.4, seed=5
            )
            network = Network(Simulator(), channel, batched=batched)
            processes = [Echo(f"p{i}") for i in range(6)]
            for process in processes:
                network.register(process)
            for round_ in range(20):
                network.multicast("p0", ["p1", "p2", "p3", "p4", "p5"], "ping", round_)
            network.run()
            return network, processes

        batched_net, batched_procs = build(True)
        reference_net, reference_procs = build(False)
        assert batched_net.messages_sent == reference_net.messages_sent == 100
        assert batched_net.messages_dropped == reference_net.messages_dropped > 0
        assert batched_net.messages_delivered == reference_net.messages_delivered
        for a, b in zip(batched_procs, reference_procs):
            assert [(m.sender, m.payload, m.sent_at) for m in a.received] == [
                (m.sender, m.payload, m.sent_at) for m in b.received
            ]


class TestBatchedReferenceEquivalence:
    """The batched plane must be indistinguishable from the scalar oracle."""

    class Relay(Echo):
        """Re-broadcasts each payload once: a deterministic gossip storm."""

        def __init__(self, pid: str) -> None:
            super().__init__(pid)
            self.seen: set[str] = set()

        def on_message(self, message: Message) -> None:
            super().on_message(message)
            if message.payload not in self.seen:
                self.seen.add(message.payload)
                self.broadcast("gossip", message.payload, include_self=False)

    def _storm(self, batched: bool, drop: float, seed: int):
        from repro.network.channels import LossyChannel

        channel = LossyChannel(
            SynchronousChannel(delta=1.0, min_delay=0.1, seed=seed), drop, seed=seed + 1
        )
        network = Network(Simulator(), channel, batched=batched)
        processes = [self.Relay(f"p{i}") for i in range(8)]
        for process in processes:
            network.register(process)
        for i, origin in enumerate(("p0", "p3", "p5")):
            network.simulator.schedule(
                0.2 * i, lambda o=origin, i=i: network.broadcast(o, "gossip", f"r{i}")
            )
        network.run()
        return network, processes

    @pytest.mark.parametrize("seed", (1, 9, 42))
    @pytest.mark.parametrize("drop", (0.0, 0.35))
    def test_drop_accounting_unchanged_by_batching(self, drop: float, seed: int):
        """Regression (PR 4): sent/delivered/dropped match the scalar path."""
        batched_net, batched_procs = self._storm(True, drop, seed)
        reference_net, reference_procs = self._storm(False, drop, seed)
        assert batched_net.messages_sent == reference_net.messages_sent
        assert batched_net.messages_delivered == reference_net.messages_delivered
        assert batched_net.messages_dropped == reference_net.messages_dropped
        assert (
            batched_net.messages_sent
            == batched_net.messages_delivered + batched_net.messages_dropped
        )
        assert batched_net.channel.dropped == reference_net.channel.dropped
        if drop:
            assert batched_net.messages_dropped > 0
        # Delivery order and contents match message-for-message.
        for a, b in zip(batched_procs, reference_procs):
            assert [(m.sender, m.kind, m.payload, m.sent_at) for m in a.received] == [
                (m.sender, m.kind, m.payload, m.sent_at) for m in b.received
            ]
        assert batched_net.simulator.events_processed == reference_net.simulator.events_processed
        assert batched_net.simulator.now == reference_net.simulator.now


class TestRunUntilClockAdvance:
    def test_clock_advances_to_until_when_queue_drains_early(self):
        simulator = Simulator()
        log: list[str] = []
        simulator.schedule(1.0, lambda: log.append("only"))
        processed = simulator.run(until=10.0)
        assert processed == 1 and log == ["only"]
        assert simulator.pending == 0
        assert simulator.now == 10.0

    def test_clock_advances_to_until_when_only_later_events_remain(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.schedule(20.0, lambda: None)
        simulator.run(until=10.0)
        assert simulator.pending == 1
        assert simulator.now == 10.0

    def test_empty_run_still_reaches_the_horizon(self):
        simulator = Simulator()
        simulator.run(until=7.5)
        assert simulator.now == 7.5


class TestDropAccounting:
    """messages_sent == delivered + dropped + in-flight, always."""

    def _lossy_network(self, drop: float, seed: int = 3):
        from repro.network.channels import LossyChannel

        simulator = Simulator()
        channel = LossyChannel(SynchronousChannel(delta=1.0, seed=seed), drop, seed=seed)
        network = Network(simulator, channel)
        a, b = Echo("a"), Echo("b")
        network.register(a)
        network.register(b)
        return network, simulator

    def test_accounting_mid_run_counts_in_flight_messages(self):
        network, simulator = self._lossy_network(drop=0.5)
        for _ in range(200):
            network.send("a", "b", "ping", None)
        # Nothing processed yet: every non-dropped message is in flight.
        assert network.messages_delivered == 0
        assert network.messages_sent == network.messages_dropped + simulator.pending

    def test_accounting_balances_after_the_queue_drains(self):
        network, simulator = self._lossy_network(drop=0.3)
        for _ in range(500):
            network.send("a", "b", "ping", None)
        in_flight = simulator.pending
        assert network.messages_sent == network.messages_dropped + in_flight
        network.run()
        assert simulator.pending == 0
        assert network.messages_sent == network.messages_delivered + network.messages_dropped
        assert network.messages_delivered == in_flight
        assert network.messages_dropped > 0

    def test_lossy_protocol_run_balances_too(self):
        from repro.engine import ChannelSpec, ExperimentSpec

        record = ExperimentSpec(
            protocol="bitcoin",
            replicas=3,
            duration=40.0,
            seed=9,
            channel=ChannelSpec(kind="synchronous", drop_probability=0.4),
            params={"token_rate": 0.3},
        ).execute()
        net = record.network
        assert net["messages_dropped"] > 0
        assert net["messages_sent"] == net["messages_delivered"] + net["messages_dropped"]
