"""Unit tests for the discrete-event simulator and network fabric."""

from __future__ import annotations

import pytest

from repro.network.channels import SynchronousChannel
from repro.network.process import Process
from repro.network.simulator import Message, Network, Simulator


class Echo(Process):
    """Test process that logs every delivery and can ping a peer."""

    def __init__(self, pid: str) -> None:
        super().__init__(pid)
        self.received: list[Message] = []

    def on_message(self, message: Message) -> None:
        self.received.append(message)


class TestSimulator:
    def test_events_run_in_timestamp_order(self):
        simulator = Simulator()
        log: list[str] = []
        simulator.schedule(5.0, lambda: log.append("late"))
        simulator.schedule(1.0, lambda: log.append("early"))
        simulator.run()
        assert log == ["early", "late"]
        assert simulator.now == 5.0

    def test_equal_timestamps_preserve_insertion_order(self):
        simulator = Simulator()
        log: list[int] = []
        for i in range(5):
            simulator.schedule(1.0, lambda i=i: log.append(i))
        simulator.run()
        assert log == [0, 1, 2, 3, 4]

    def test_run_until_leaves_later_events_pending(self):
        simulator = Simulator()
        log: list[str] = []
        simulator.schedule(1.0, lambda: log.append("a"))
        simulator.schedule(10.0, lambda: log.append("b"))
        simulator.run(until=5.0)
        assert log == ["a"]
        assert simulator.pending == 1
        assert simulator.now == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        simulator = Simulator()
        log: list[str] = []
        simulator.schedule_at(3.0, lambda: log.append("x"))
        with pytest.raises(ValueError):
            simulator.schedule_at(-1.0, lambda: None)
        simulator.run()
        assert log == ["x"] and simulator.now == 3.0

    def test_event_cascades_are_processed(self):
        simulator = Simulator()
        log: list[float] = []

        def first():
            log.append(simulator.now)
            simulator.schedule(2.0, second)

        def second():
            log.append(simulator.now)

        simulator.schedule(1.0, first)
        simulator.run()
        assert log == [1.0, 3.0]

    def test_max_events_guard(self):
        simulator = Simulator()

        def rearm():
            simulator.schedule(1.0, rearm)

        simulator.schedule(0.0, rearm)
        with pytest.raises(RuntimeError):
            simulator.run(max_events=100)


class TestNetwork:
    def _network(self, delta: float = 1.0) -> tuple[Network, Echo, Echo]:
        network = Network(Simulator(), SynchronousChannel(delta=delta, seed=1))
        a, b = Echo("a"), Echo("b")
        network.register(a)
        network.register(b)
        return network, a, b

    def test_send_and_deliver(self):
        network, a, b = self._network()
        network.send("a", "b", "ping", {"x": 1})
        network.run()
        assert len(b.received) == 1
        assert b.received[0].kind == "ping"
        assert network.messages_delivered == 1

    def test_unknown_receiver_rejected(self):
        network, _, _ = self._network()
        with pytest.raises(KeyError):
            network.send("a", "ghost", "ping", None)

    def test_duplicate_registration_rejected(self):
        network, a, _ = self._network()
        with pytest.raises(ValueError):
            network.register(a)

    def test_broadcast_reaches_everyone(self):
        network, a, b = self._network()
        network.broadcast("a", "hello", None, include_self=True)
        network.run()
        assert len(a.received) == 1
        assert len(b.received) == 1

    def test_broadcast_can_exclude_self(self):
        network, a, b = self._network()
        network.broadcast("a", "hello", None, include_self=False)
        network.run()
        assert len(a.received) == 0
        assert len(b.received) == 1

    def test_crashed_process_receives_nothing(self):
        network, a, b = self._network()
        b.crash()
        network.send("a", "b", "ping", None)
        network.run()
        assert b.received == []

    def test_correct_process_ids_excludes_crashed(self):
        network, a, b = self._network()
        b.crash()
        assert network.correct_process_ids() == ("a",)

    def test_history_accessor_returns_recorded_events(self):
        network, a, _ = self._network()
        network.recorder.send("a", "b0", "x")
        assert len(network.history()) == 1

    def test_process_helpers(self):
        network, a, b = self._network()
        assert network.process("a") is a
        assert set(network.process_ids) == {"a", "b"}
        assert a.now == 0.0


class TestRunUntilClockAdvance:
    def test_clock_advances_to_until_when_queue_drains_early(self):
        simulator = Simulator()
        log: list[str] = []
        simulator.schedule(1.0, lambda: log.append("only"))
        processed = simulator.run(until=10.0)
        assert processed == 1 and log == ["only"]
        assert simulator.pending == 0
        assert simulator.now == 10.0

    def test_clock_advances_to_until_when_only_later_events_remain(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.schedule(20.0, lambda: None)
        simulator.run(until=10.0)
        assert simulator.pending == 1
        assert simulator.now == 10.0

    def test_empty_run_still_reaches_the_horizon(self):
        simulator = Simulator()
        simulator.run(until=7.5)
        assert simulator.now == 7.5


class TestDropAccounting:
    """messages_sent == delivered + dropped + in-flight, always."""

    def _lossy_network(self, drop: float, seed: int = 3):
        from repro.network.channels import LossyChannel

        simulator = Simulator()
        channel = LossyChannel(SynchronousChannel(delta=1.0, seed=seed), drop, seed=seed)
        network = Network(simulator, channel)
        a, b = Echo("a"), Echo("b")
        network.register(a)
        network.register(b)
        return network, simulator

    def test_accounting_mid_run_counts_in_flight_messages(self):
        network, simulator = self._lossy_network(drop=0.5)
        for _ in range(200):
            network.send("a", "b", "ping", None)
        # Nothing processed yet: every non-dropped message is in flight.
        assert network.messages_delivered == 0
        assert network.messages_sent == network.messages_dropped + simulator.pending

    def test_accounting_balances_after_the_queue_drains(self):
        network, simulator = self._lossy_network(drop=0.3)
        for _ in range(500):
            network.send("a", "b", "ping", None)
        in_flight = simulator.pending
        assert network.messages_sent == network.messages_dropped + in_flight
        network.run()
        assert simulator.pending == 0
        assert network.messages_sent == network.messages_delivered + network.messages_dropped
        assert network.messages_delivered == in_flight
        assert network.messages_dropped > 0

    def test_lossy_protocol_run_balances_too(self):
        from repro.engine import ChannelSpec, ExperimentSpec

        record = ExperimentSpec(
            protocol="bitcoin",
            replicas=3,
            duration=40.0,
            seed=9,
            channel=ChannelSpec(kind="synchronous", drop_probability=0.4),
            params={"token_rate": 0.3},
        ).execute()
        net = record.network
        assert net["messages_dropped"] > 0
        assert net["messages_sent"] == net["messages_delivered"] + net["messages_dropped"]
