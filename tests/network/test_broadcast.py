"""Unit tests for flooding and Light Reliable Communication."""

from __future__ import annotations

import pytest

from repro.core.block import GENESIS_ID, Block
from repro.core.history import EventKind
from repro.network.broadcast import (
    BlockAnnouncement,
    FloodingBroadcast,
    LightReliableCommunication,
)
from repro.network.channels import SynchronousChannel, TargetedLossChannel
from repro.network.process import Process
from repro.network.simulator import Message, Network, Simulator
from repro.network.update_agreement import check_light_reliable_communication


class Disseminator(Process):
    """Minimal process wiring a broadcast primitive to the test network."""

    def __init__(self, pid: str, lrc: bool = False) -> None:
        super().__init__(pid)
        self.lrc = lrc
        self.delivered: list[str] = []
        self.transport = None

    def attach(self, network: Network) -> None:
        super().attach(network)
        cls = LightReliableCommunication if self.lrc else FloodingBroadcast
        self.transport = cls(self)
        self.transport.on_deliver(lambda ann, sender: self.delivered.append(ann.block_id))

    def on_message(self, message: Message) -> None:
        self.transport.handle(message)

    def publish(self, block_id: str) -> None:
        block = Block(block_id, GENESIS_ID, creator=self.pid)
        self.transport.disseminate(BlockAnnouncement(GENESIS_ID, block))


def _build(n: int, channel, lrc: bool) -> tuple[Network, list[Disseminator]]:
    network = Network(Simulator(), channel)
    processes = [Disseminator(f"p{i}", lrc=lrc) for i in range(n)]
    for process in processes:
        network.register(process)
    return network, processes


class TestFlooding:
    def test_everyone_delivers_over_reliable_channels(self):
        network, processes = _build(4, SynchronousChannel(seed=1), lrc=False)
        processes[0].publish("blk")
        network.run()
        assert all(p.delivered == ["blk"] for p in processes)

    def test_duplicate_deliveries_suppressed(self):
        network, processes = _build(3, SynchronousChannel(seed=1), lrc=False)
        processes[0].publish("blk")
        network.run()
        processes[0].publish("blk2")
        network.run()
        assert processes[1].delivered == ["blk", "blk2"]
        assert processes[1].transport.delivered_blocks == ("blk", "blk2")

    def test_send_and_receive_events_recorded(self):
        network, processes = _build(3, SynchronousChannel(seed=1), lrc=False)
        processes[0].publish("blk")
        network.run()
        history = network.history()
        assert len(history.replication_events(EventKind.SEND)) == 1
        assert len(history.replication_events(EventKind.RECEIVE)) == 3

    def test_non_block_messages_ignored(self):
        network, processes = _build(2, SynchronousChannel(seed=1), lrc=False)
        network.send("p0", "p1", "gossip", "hello")
        network.run()
        assert processes[1].delivered == []

    def test_flooding_does_not_survive_targeted_loss(self):
        # Drop every copy addressed to p2: plain flooding leaves it behind.
        channel = TargetedLossChannel(
            SynchronousChannel(seed=1), drop_if=lambda s, r, t: r == "p2"
        )
        network, processes = _build(3, channel, lrc=False)
        processes[0].publish("blk")
        network.run()
        assert processes[2].delivered == []
        result = check_light_reliable_communication(
            network.history(), correct_processes=[p.pid for p in processes]
        )
        assert not result.agreement_holds


class TestLightReliableCommunication:
    def test_relay_survives_loss_of_direct_copy(self):
        # The sender's copy to p2 is dropped, but relays from p1 get through.
        channel = TargetedLossChannel(
            SynchronousChannel(seed=1),
            drop_if=lambda s, r, t: s == "p0" and r == "p2",
        )
        network, processes = _build(3, channel, lrc=True)
        processes[0].publish("blk")
        network.run()
        assert processes[2].delivered == ["blk"]
        result = check_light_reliable_communication(
            network.history(), correct_processes=[p.pid for p in processes]
        )
        assert result.holds

    def test_relay_counter_increments(self):
        network, processes = _build(3, SynchronousChannel(seed=1), lrc=True)
        processes[0].publish("blk")
        network.run()
        assert sum(p.transport.relayed for p in processes[1:]) >= 1

    def test_relay_can_be_disabled(self):
        network = Network(Simulator(), SynchronousChannel(seed=1))
        process = Disseminator("p0", lrc=True)
        network.register(process)
        process.transport.relay = False
        process.publish("blk")
        network.run()
        assert process.transport.relayed == 0

    def test_validity_sender_receives_its_own_message(self):
        network, processes = _build(3, SynchronousChannel(seed=1), lrc=True)
        processes[0].publish("blk")
        network.run()
        assert "blk" in processes[0].delivered
