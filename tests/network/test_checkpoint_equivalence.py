"""Checkpoint/restore equivalence oracle: continued runs are byte-identical.

The PR 9 acceptance bar, one directory over from the array/heap core
oracle: snapshot a live run at every chunk boundary, restore at several
seeded-random points, finish each restored run, and the continued
``History.events`` must equal the uninterrupted run's — event for
event, timestamp for timestamp — across both event cores, every channel
model, several dissemination topologies and every registered fault
kind.  Anything less would mean pickling the run perturbed the
simulated execution rather than merely pausing it.
"""

from __future__ import annotations

import random

import pytest

from repro.core.selection import HeaviestChain
from repro.engine.checkpoint import SimulationCheckpoint
from repro.network.channels import (
    AsynchronousChannel,
    LossyChannel,
    PartiallySynchronousChannel,
    SynchronousChannel,
    TargetedLossChannel,
)
from repro.network.faults import available_faults, build_fault
from repro.network.topology import GossipFanout, Sharded
from repro.oracle.tape import TapeFamily
from repro.oracle.theta import ProdigalOracle
from repro.protocols.base import ReplicaConfig, run_protocol
from repro.protocols.nakamoto import NakamotoReplica

#: Chunk size small enough that every scenario crosses several snapshot
#: boundaries in both the main and drain phases.
EVERY = 120

#: Restore points sampled per scenario.
K = 3


class _DropP2Early:
    """Picklable targeted-loss predicate (snapshots carry the channel)."""

    def __call__(self, sender: str, receiver: str, now: float) -> bool:
        return receiver == "p2" and now < 30.0


def _channel(kind: str, seed: int):
    if kind == "synchronous":
        return SynchronousChannel(delta=3.0, min_delay=0.5, seed=seed)
    if kind == "asynchronous":
        return AsynchronousChannel(mean_delay=2.0, tail_probability=0.2, seed=seed)
    if kind == "partial":
        return PartiallySynchronousChannel(gst=25.0, delta=1.0, pre_gst_mean=4.0, seed=seed)
    if kind == "lossy":
        return LossyChannel(
            SynchronousChannel(delta=2.0, min_delay=0.3, seed=seed), 0.25, seed=seed + 1
        )
    if kind == "targeted":
        return TargetedLossChannel(
            SynchronousChannel(delta=2.0, min_delay=0.3, seed=seed),
            drop_if=_DropP2Early(),
        )
    raise AssertionError(kind)


def _topology(kind: str, seed: int):
    if kind == "full":
        return None
    if kind == "gossip":
        return GossipFanout(fanout=2, seed=seed)
    if kind == "sharded":
        return Sharded(shards=2, cross_links=1)
    raise AssertionError(kind)


def _fault(kind: str):
    params = {
        "crash": {"at": {"p1": 20.0}},
        "silent": {"members": ("p3",)},
        "churn": {"leave": {"p4": 15.0}, "join": {"p4": 35.0}},
        "partition": {
            "groups": [["p0", "p1"], ["p2", "p3", "p4"]],
            "at": 10.0,
            "heal_at": 35.0,
        },
        "eclipse": {"victim": "p2", "at": 5.0, "until": 30.0},
    }
    return build_fault(kind, params[kind])


def _run(kind: str, seed: int, core: str, topology: str = "full", fault=None, **kwargs):
    tapes = TapeFamily(seed=seed, probability_scale=0.5)
    oracle = ProdigalOracle(tapes=tapes)

    def factory(pid, orc, network):  # noqa: ARG001
        config = ReplicaConfig(
            selection=HeaviestChain(), read_interval=4.0, use_lrc=True, merit=0.2
        )
        return NakamotoReplica(pid, orc, config, mining_interval=1.0)

    return run_protocol(
        f"ckpt-equiv-{kind}",
        factory,
        oracle,
        n=5,
        duration=50.0,
        channel=_channel(kind, seed),
        topology=_topology(topology, seed),
        core=core,
        fault=fault,
        **kwargs,
    )


def _assert_restores_identical(
    kind: str, seed: int, core: str, topology: str = "full", fault_kind=None
):
    fault = _fault(fault_kind) if fault_kind else None
    clean = _run(kind, seed, core, topology, fault)

    snapshots = []
    capture = _run(
        kind,
        seed,
        core,
        topology,
        _fault(fault_kind) if fault_kind else None,
        checkpoint_every=EVERY,
        checkpoint_sink=lambda live: snapshots.append(
            SimulationCheckpoint.capture(live)
        ),
    )
    # Chunked draining alone must not perturb the execution.
    assert capture.history.events == clean.history.events
    assert len(snapshots) >= K, "scenario too small to exercise restore points"

    rng = random.Random(f"{kind}:{seed}:{core}:{topology}:{fault_kind}")
    points = rng.sample(range(len(snapshots)), K)
    for index in sorted(points):
        restored = snapshots[index].restore()
        result = restored.finish()
        assert result.history.events == clean.history.events, (
            f"restore at snapshot {index}/{len(snapshots)} "
            f"(clock {snapshots[index].clock:.2f}, phase "
            f"{snapshots[index].phase!r}) diverged from the clean run"
        )
        assert (
            result.network.messages_sent == clean.network.messages_sent
        )
        assert (
            result.network.simulator.events_processed
            == clean.network.simulator.events_processed
        )


@pytest.mark.parametrize("core", ("array", "heap"))
@pytest.mark.parametrize(
    "kind", ("synchronous", "asynchronous", "partial", "lossy", "targeted")
)
def test_restores_identical_across_channel_models(kind: str, core: str):
    _assert_restores_identical(kind, seed=3, core=core)


@pytest.mark.parametrize("core", ("array", "heap"))
@pytest.mark.parametrize("topology", ("full", "gossip", "sharded"))
def test_restores_identical_across_topologies(topology: str, core: str):
    _assert_restores_identical("synchronous", seed=5, core=core, topology=topology)


@pytest.mark.parametrize("core", ("array", "heap"))
@pytest.mark.parametrize("fault_kind", sorted(available_faults()))
def test_restores_identical_for_every_fault_kind(fault_kind: str, core: str):
    _assert_restores_identical("lossy", seed=13, core=core, fault_kind=fault_kind)


def test_snapshots_span_both_event_phases():
    """Sanity: the oracle scenarios snapshot in main *and* drain phases."""
    snapshots = []
    _run(
        "synchronous",
        seed=3,
        core="array",
        checkpoint_every=EVERY,
        checkpoint_sink=lambda live: snapshots.append(
            SimulationCheckpoint.capture(live)
        ),
    )
    phases = {snap.phase for snap in snapshots}
    assert "main" in phases
    assert "drain" in phases
