"""Dissemination topologies: semantics, determinism, caching, equivalence.

The PR-level acceptance bars pinned here:

* the default :class:`FullMesh` produces event-for-event identical
  ``History.events`` to the pre-topology broadcast path, on randomized
  protocol runs over all five channel models;
* seeded topologies are deterministic — the same seed yields identical
  receiver sequences across two independent instances (and identical
  recorded histories across two identically-seeded gossip runs);
* :meth:`Network.register` invalidates both the full-mesh ``_others``
  exclusion cache and the static-topology receiver cache.
"""

from __future__ import annotations

import pytest

from repro.core.selection import HeaviestChain
from repro.network.channels import (
    AsynchronousChannel,
    LossyChannel,
    PartiallySynchronousChannel,
    SynchronousChannel,
    TargetedLossChannel,
)
from repro.network.process import Process
from repro.network.simulator import Network, Simulator
from repro.network.topology import (
    Committee,
    FullMesh,
    GossipFanout,
    RandomRegular,
    Ring,
    Sharded,
    Topology,
    available_topologies,
    build_topology,
    get_topology,
    register_topology,
)
from repro.oracle.tape import TapeFamily
from repro.oracle.theta import ProdigalOracle
from repro.protocols.base import ReplicaConfig, run_protocol
from repro.protocols.nakamoto import NakamotoReplica

PIDS = tuple(f"p{i}" for i in range(6))


# ---------------------------------------------------------------------------
# pure topology semantics
# ---------------------------------------------------------------------------


class TestFullMesh:
    def test_neighbors_are_everyone_else_in_registration_order(self):
        assert FullMesh().neighbors("p2", PIDS) == ("p0", "p1", "p3", "p4", "p5")

    def test_include_self_returns_the_registered_tuple_itself(self):
        # Identity, not just equality: the broadcast fast path relies on
        # reusing the network's pid tuple.
        assert FullMesh().receivers("p2", PIDS, include_self=True) is PIDS


class TestGossipFanout:
    def test_sample_size_and_sender_exclusion(self):
        topo = GossipFanout(fanout=3, seed=5)
        for _ in range(20):
            sample = topo.neighbors("p1", PIDS)
            assert len(sample) == 3
            assert "p1" not in sample
            assert len(set(sample)) == 3
            assert set(sample) <= set(PIDS)

    def test_fanout_clamped_to_population(self):
        topo = GossipFanout(fanout=50, seed=0)
        assert set(topo.neighbors("p0", PIDS)) == set(PIDS[1:])

    def test_same_seed_identical_receiver_sequences(self):
        a = GossipFanout(fanout=2, seed=9)
        b = GossipFanout(fanout=2, seed=9)
        sequence_a = [a.receivers(pid, PIDS, include_self=(i % 2 == 0)) for i, pid in
                      enumerate(PIDS * 10)]
        sequence_b = [b.receivers(pid, PIDS, include_self=(i % 2 == 0)) for i, pid in
                      enumerate(PIDS * 10)]
        assert sequence_a == sequence_b

    def test_different_seeds_diverge(self):
        a = GossipFanout(fanout=2, seed=1)
        b = GossipFanout(fanout=2, seed=2)
        assert [a.neighbors("p0", PIDS) for _ in range(10)] != [
            b.neighbors("p0", PIDS) for _ in range(10)
        ]

    def test_fanout_must_be_positive(self):
        with pytest.raises(ValueError, match="fanout"):
            GossipFanout(fanout=0)

    def test_is_dynamic(self):
        assert GossipFanout().static is False


class TestCommittee:
    def test_member_broadcast_matches_full_mesh_exactly(self):
        topo = Committee(members=PIDS)
        full = FullMesh()
        for pid in PIDS:
            for include_self in (True, False):
                assert topo.receivers(pid, PIDS, include_self) == full.receivers(
                    pid, PIDS, include_self
                )

    def test_observer_reaches_the_committee_only(self):
        topo = Committee(members=("p0", "p2"))
        assert topo.neighbors("p4", PIDS) == ("p0", "p2")
        assert topo.receivers("p4", PIDS, include_self=True) == ("p4", "p0", "p2")

    def test_closed_committee_excludes_observers(self):
        topo = Committee(members=("p0", "p1", "p2"), include_observers=False)
        assert topo.neighbors("p0", PIDS) == ("p1", "p2")
        assert topo.receivers("p0", PIDS, include_self=True) == ("p0", "p1", "p2")

    def test_fraction_takes_a_registration_order_prefix(self):
        topo = Committee(fraction=0.5)
        assert topo.members_of(PIDS) == ("p0", "p1", "p2")

    def test_unknown_members_raise(self):
        with pytest.raises(KeyError, match="not registered"):
            Committee(members=("p0", "ghost")).members_of(PIDS)


class TestSharded:
    def test_contiguous_partition_and_gateways(self):
        topo = Sharded(shards=3, cross_links=1)
        assert topo.shards_of(PIDS) == (("p0", "p1"), ("p2", "p3"), ("p4", "p5"))
        # Gateway p0 reaches its shard plus the other gateways.
        assert topo.neighbors("p0", PIDS) == ("p1", "p2", "p4")
        # Non-gateway p1 stays within its shard.
        assert topo.neighbors("p1", PIDS) == ("p0",)

    def test_explicit_groups(self):
        topo = Sharded(groups=[["p0", "p1", "p2"], ["p3", "p4", "p5"]], cross_links=2)
        assert topo.neighbors("p4", PIDS) == ("p3", "p5", "p0", "p1")

    def test_unassigned_and_unknown_processes_raise(self):
        with pytest.raises(KeyError, match="unassigned"):
            Sharded(groups=[["p0", "p1"]]).shards_of(PIDS)
        with pytest.raises(KeyError, match="unregistered"):
            Sharded(groups=[["p0", "ghost"], list(PIDS[1:])]).shards_of(PIDS)
        with pytest.raises(ValueError, match="overlap"):
            Sharded(groups=[["p0", "p1"], ["p1", *PIDS[2:]]]).shards_of(PIDS)

    def test_gateway_clique_keeps_the_graph_connected(self):
        topo = Sharded(shards=3, cross_links=1)
        reached, frontier = {"p5"}, ["p5"]
        while frontier:
            for peer in topo.neighbors(frontier.pop(), PIDS):
                if peer not in reached:
                    reached.add(peer)
                    frontier.append(peer)
        assert reached == set(PIDS)


class TestRing:
    def test_single_hop_neighbors_wrap_around(self):
        assert Ring().neighbors("p0", PIDS) == ("p1", "p5")
        assert Ring().neighbors("p3", PIDS) == ("p2", "p4")

    def test_two_hops(self):
        assert Ring(hops=2).neighbors("p0", PIDS) == ("p1", "p2", "p4", "p5")

    def test_degenerate_population(self):
        assert Ring().neighbors("p0", ("p0",)) == ()


class TestRandomRegular:
    def test_deterministic_for_seed_and_membership(self):
        assert RandomRegular(degree=4, seed=3).adjacency(PIDS) == RandomRegular(
            degree=4, seed=3
        ).adjacency(PIDS)
        assert RandomRegular(degree=4, seed=3).adjacency(PIDS) != RandomRegular(
            degree=4, seed=4
        ).adjacency(PIDS)

    def test_adjacency_is_symmetric_with_bounded_degree(self):
        adjacency = RandomRegular(degree=4, seed=7).adjacency(PIDS)
        for pid, peers in adjacency.items():
            assert pid not in peers
            assert 2 <= len(peers) <= 4
            for peer in peers:
                assert pid in adjacency[peer]


class TestRegistry:
    def test_builtin_vocabulary(self):
        assert set(available_topologies()) == {
            "full",
            "gossip",
            "committee",
            "sharded",
            "ring",
            "random-regular",
        }

    def test_get_topology_resolves(self):
        assert get_topology("gossip") is GossipFanout

    def test_unknown_topology_uniform_error(self):
        with pytest.raises((KeyError, ValueError), match="unknown topology 'mesh2'"):
            get_topology("mesh2")
        with pytest.raises(KeyError, match="registered: 'committee', 'full'"):
            get_topology("mesh2")

    def test_collision_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_topology("full")(FullMesh)

    def test_build_topology_forwards_seed_only_where_accepted(self):
        gossip = build_topology("gossip", {"fanout": 2}, seed=42)
        assert (gossip.fanout, gossip.seed) == (2, 42)
        assert isinstance(build_topology("full", seed=42), FullMesh)
        # An explicit params seed wins over the spec-level default.
        assert build_topology("gossip", {"seed": 5}, seed=42).seed == 5


# ---------------------------------------------------------------------------
# network integration
# ---------------------------------------------------------------------------


class Recorder(Process):
    """Counts deliveries per message kind."""

    def __init__(self, pid: str) -> None:
        super().__init__(pid)
        self.got = []

    def on_message(self, message) -> None:
        self.got.append((message.sender, message.payload))


def _network(topology: Topology = None, n: int = 6, batched: bool = True) -> Network:
    network = Network(
        Simulator(),
        SynchronousChannel(delta=1.0, seed=1),
        batched=batched,
        topology=topology,
    )
    for i in range(n):
        network.register(Recorder(f"p{i}"))
    return network


class TestNetworkRouting:
    @pytest.mark.parametrize("batched", (True, False))
    def test_broadcast_reaches_topology_neighbors_only(self, batched: bool):
        network = _network(Ring(), batched=batched)
        network.broadcast("p0", "ping", 1, include_self=False)
        network.run()
        heard = {pid for pid in network.process_ids if network.process(pid).got}
        assert heard == {"p1", "p5"}
        assert network.messages_sent == 2

    def test_dynamic_topology_sampled_per_broadcast(self):
        network = _network(GossipFanout(fanout=2, seed=3))
        for _ in range(12):
            network.broadcast("p0", "ping", 1, include_self=False)
        network.run()
        assert network.messages_sent == 24
        # Across 12 draws of 2-of-5 the union should exceed a single sample.
        heard = {pid for pid in network.process_ids if network.process(pid).got}
        assert len(heard) > 2

    def test_static_topology_receiver_cache_is_populated_and_reused(self):
        network = _network(Ring())
        network.broadcast("p0", "ping", 1, include_self=False)
        assert network._topology_receivers == {("p0", False): ("p1", "p5")}
        network.broadcast("p0", "ping", 2, include_self=False)
        network.run()
        assert len(network.process("p1").got) == 2

    def test_register_invalidates_others_and_topology_caches(self):
        """Satellite regression: membership changes flush both caches."""
        # Full mesh: the `_others` exclusion cache must be rebuilt.
        network = _network(None, n=3)
        network.broadcast("p0", "ping", 1, include_self=False)
        assert network._others  # populated by the broadcast
        network.register(Recorder("p3"))
        assert not network._others
        network.broadcast("p0", "ping", 2, include_self=False)
        network.run()
        assert [payload for _, payload in network.process("p3").got] == [2]

        # Static topology: the receiver cache must be rebuilt too.  With a
        # ring, the late joiner becomes p0's new counter-clockwise
        # neighbor, displacing the old cached list.
        network = _network(Ring(), n=3)
        network.broadcast("p0", "ping", 1, include_self=False)
        assert network._topology_receivers
        network.register(Recorder("p3"))
        assert not network._topology_receivers
        network.broadcast("p0", "ping", 2, include_self=False)
        network.run()
        assert [payload for _, payload in network.process("p3").got] == [2]
        # p2 heard the first broadcast (ring of 3) but not the second
        # (ring of 4 puts p1/p3 next to p0).
        assert [payload for _, payload in network.process("p2").got] == [1]

    def test_topology_naming_unknown_receiver_fails_loudly(self):
        network = _network(Committee(members=("p0", "ghost")), n=3)
        with pytest.raises(KeyError, match="not registered"):
            network.broadcast("p0", "ping", 1)


# ---------------------------------------------------------------------------
# protocol-run equivalence and determinism
# ---------------------------------------------------------------------------


def _channel(kind: str, seed: int):
    if kind == "synchronous":
        return SynchronousChannel(delta=3.0, min_delay=0.5, seed=seed)
    if kind == "asynchronous":
        return AsynchronousChannel(mean_delay=2.0, tail_probability=0.2, seed=seed)
    if kind == "partial":
        return PartiallySynchronousChannel(gst=25.0, delta=1.0, pre_gst_mean=4.0, seed=seed)
    if kind == "lossy":
        return LossyChannel(
            SynchronousChannel(delta=2.0, min_delay=0.3, seed=seed), 0.25, seed=seed + 1
        )
    if kind == "targeted":
        return TargetedLossChannel(
            SynchronousChannel(delta=2.0, min_delay=0.3, seed=seed),
            drop_if=lambda s, r, t: r == "p2" and t < 30.0,
        )
    raise AssertionError(kind)


def _run(kind: str, seed: int, topology: Topology = None):
    tapes = TapeFamily(seed=seed, probability_scale=0.5)
    oracle = ProdigalOracle(tapes=tapes)

    def factory(pid, orc, network):  # noqa: ARG001
        config = ReplicaConfig(
            selection=HeaviestChain(), read_interval=4.0, use_lrc=True, merit=0.2
        )
        return NakamotoReplica(pid, orc, config, mining_interval=1.0)

    return run_protocol(
        f"topo-{kind}",
        factory,
        oracle,
        n=5,
        duration=50.0,
        channel=_channel(kind, seed),
        topology=topology,
    )


@pytest.mark.parametrize("kind", ("synchronous", "asynchronous", "partial", "lossy", "targeted"))
@pytest.mark.parametrize("seed", (3, 17))
def test_fullmesh_histories_identical_to_pre_topology_path(kind: str, seed: int):
    """The PR acceptance bar: FullMesh is byte-identical to no topology."""
    default = _run(kind, seed, topology=None)
    fullmesh = _run(kind, seed, topology=FullMesh())
    assert default.history.events == fullmesh.history.events
    assert default.network.messages_sent == fullmesh.network.messages_sent
    assert default.network.messages_dropped == fullmesh.network.messages_dropped
    assert len(default.history.read_responses()) > 0


@pytest.mark.parametrize("kind", ("synchronous", "lossy"))
def test_gossip_runs_are_seed_deterministic(kind: str):
    """Same topology seed ⇒ identical histories; LRC carries the epidemic."""
    first = _run(kind, seed=7, topology=GossipFanout(fanout=3, seed=7))
    second = _run(kind, seed=7, topology=GossipFanout(fanout=3, seed=7))
    assert first.history.events == second.history.events
    assert first.network.messages_sent == second.network.messages_sent
    # And the fan-out genuinely restricted the flood.
    flood = _run(kind, seed=7)
    assert first.network.messages_sent < flood.network.messages_sent


def test_sharded_run_still_disseminates_through_gateways():
    """LRC relays bridge the shards: every replica converges on real blocks."""
    result = _run("synchronous", seed=3, topology=Sharded(shards=2, cross_links=1))
    assert all(len(replica.tree) > 1 for replica in result.replicas.values())
