"""Array vs. heap event core: recorded histories are identical.

The PR 6 acceptance bar, mirroring the PR 4 message-plane oracle one
directory over: on randomized fork-, drop- and fault-heavy protocol
runs, ``run_protocol(core="array")`` (the calendar-queue of numpy
buckets with interned method dispatch) and ``run_protocol(core="heap")``
(the classical heapq of tuples, kept verbatim) must record *identical*
histories — every event, every timestamp, every read result — for all
channel models and across dissemination topologies.  Anything less would
mean the new core changed the simulated executions, not just their
speed.

PR 10 widens the oracle axis from the event *store* to the whole
callback plane: the live leg (array core, batch dispatch, hot-path
recorder, columnar block index) is additionally checked against the
fully retained pure/scalar plane (heap core, per-message dispatch,
``reference_recording()`` recorder, ``DEFAULT_INDEX="reference"`` dict
index) — the same oracle leg the perf bench times against.
"""

from __future__ import annotations

from contextlib import contextmanager

import pytest

import repro.core.blocktree as blocktree_module
from repro.core.history import reference_recording
from repro.core.selection import HeaviestChain
from repro.network.channels import (
    AsynchronousChannel,
    LossyChannel,
    PartiallySynchronousChannel,
    SynchronousChannel,
    TargetedLossChannel,
)
from repro.network.faults import available_faults, build_fault
from repro.network.topology import GossipFanout, Sharded
from repro.oracle.tape import TapeFamily
from repro.oracle.theta import ProdigalOracle
from repro.protocols.base import ReplicaConfig, run_protocol
from repro.protocols.nakamoto import NakamotoReplica


class CrashingMiner(NakamotoReplica):
    """A miner that crash-faults at a pre-programmed virtual time."""

    def __init__(self, *args, crash_at: float = 25.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.crash_at = crash_at

    def on_start(self) -> None:
        super().on_start()
        self.schedule(self.crash_at, self.crash)


def _channel(kind: str, seed: int):
    if kind == "synchronous":
        # Fork-prone: large delta relative to the mining interval.
        return SynchronousChannel(delta=3.0, min_delay=0.5, seed=seed)
    if kind == "asynchronous":
        return AsynchronousChannel(mean_delay=2.0, tail_probability=0.2, seed=seed)
    if kind == "partial":
        return PartiallySynchronousChannel(gst=25.0, delta=1.0, pre_gst_mean=4.0, seed=seed)
    if kind == "lossy":
        return LossyChannel(
            SynchronousChannel(delta=2.0, min_delay=0.3, seed=seed), 0.25, seed=seed + 1
        )
    if kind == "targeted":
        return TargetedLossChannel(
            SynchronousChannel(delta=2.0, min_delay=0.3, seed=seed),
            drop_if=lambda s, r, t: r == "p2" and t < 30.0,
        )
    raise AssertionError(kind)


def _topology(kind: str, seed: int):
    if kind == "full":
        return None  # run_protocol's default FullMesh
    if kind == "gossip":
        return GossipFanout(fanout=2, seed=seed)
    if kind == "sharded":
        return Sharded(shards=2, cross_links=1)
    raise AssertionError(kind)


def _fault(kind: str):
    """One representative instance per registered fault kind."""
    params = {
        "crash": {"at": {"p1": 20.0}},
        "silent": {"members": ("p3",)},
        "churn": {"leave": {"p4": 15.0}, "join": {"p4": 35.0}},
        "partition": {"groups": [["p0", "p1"], ["p2", "p3", "p4"]], "at": 10.0, "heal_at": 35.0},
        "eclipse": {"victim": "p2", "at": 5.0, "until": 30.0},
    }
    return build_fault(kind, params[kind])


@contextmanager
def _reference_plane():
    """Route new trees and recorders through the retained pure plane."""
    previous = blocktree_module.DEFAULT_INDEX
    blocktree_module.DEFAULT_INDEX = "reference"
    try:
        with reference_recording():
            yield
    finally:
        blocktree_module.DEFAULT_INDEX = previous


def _run(
    kind: str,
    seed: int,
    core: str,
    faulty: bool,
    topology: str = "full",
    fault=None,
    batched: bool = True,
    reference: bool = False,
):
    tapes = TapeFamily(seed=seed, probability_scale=0.5)
    oracle = ProdigalOracle(tapes=tapes)

    def factory(pid, orc, network):  # noqa: ARG001
        config = ReplicaConfig(
            selection=HeaviestChain(), read_interval=4.0, use_lrc=True, merit=0.2
        )
        if faulty and pid == "p1":
            return CrashingMiner(pid, orc, config, mining_interval=1.0, crash_at=20.0)
        return NakamotoReplica(pid, orc, config, mining_interval=1.0)

    def execute():
        return run_protocol(
            f"core-equiv-{kind}",
            factory,
            oracle,
            n=5,
            duration=50.0,
            channel=_channel(kind, seed),
            topology=_topology(topology, seed),
            core=core,
            batched=batched,
            fault=fault,
        )

    if reference:
        with _reference_plane():
            return execute()
    return execute()


@pytest.mark.parametrize("kind", ("synchronous", "asynchronous", "partial", "lossy", "targeted"))
@pytest.mark.parametrize("seed", (3, 17))
def test_histories_identical_across_channel_models(kind: str, seed: int):
    array = _run(kind, seed, core="array", faulty=False)
    heap = _run(kind, seed, core="heap", faulty=False)
    assert array.history.events == heap.history.events
    assert array.network.messages_sent == heap.network.messages_sent
    assert array.network.messages_delivered == heap.network.messages_delivered
    assert array.network.messages_dropped == heap.network.messages_dropped
    assert array.network.simulator.events_processed == heap.network.simulator.events_processed
    # The runs are meant to be interesting: blocks were produced and read.
    assert len(array.history.read_responses()) > 0
    assert len(array.history.append_invocations()) > 0


@pytest.mark.parametrize("topology", ("full", "gossip", "sharded"))
@pytest.mark.parametrize("kind", ("synchronous", "lossy"))
def test_histories_identical_across_topologies(topology: str, kind: str):
    array = _run(kind, seed=5, core="array", faulty=False, topology=topology)
    heap = _run(kind, seed=5, core="heap", faulty=False, topology=topology)
    assert array.history.events == heap.history.events
    assert array.network.messages_sent == heap.network.messages_sent
    assert array.network.messages_dropped == heap.network.messages_dropped


@pytest.mark.parametrize("kind", ("lossy", "partial"))
def test_histories_identical_with_crash_faults_and_drops(kind: str):
    """Fault-heavy: a replica crashes mid-run while messages are dropped."""
    array = _run(kind, seed=11, core="array", faulty=True)
    heap = _run(kind, seed=11, core="heap", faulty=True)
    assert array.history.events == heap.history.events
    assert not array.replicas["p1"].alive
    assert array.network.messages_dropped == heap.network.messages_dropped


@pytest.mark.parametrize("kind", ("synchronous", "asynchronous", "partial", "lossy", "targeted"))
@pytest.mark.parametrize("fault_kind", sorted(available_faults()))
def test_histories_identical_for_every_fault_kind(fault_kind: str, kind: str):
    """Every registered adversary × every channel model × both cores."""
    array = _run(kind, seed=13, core="array", faulty=False, fault=_fault(fault_kind))
    heap = _run(kind, seed=13, core="heap", faulty=False, fault=_fault(fault_kind))
    assert array.history.events == heap.history.events
    assert array.network.messages_sent == heap.network.messages_sent
    assert array.network.messages_delivered == heap.network.messages_delivered
    assert array.network.messages_dropped == heap.network.messages_dropped
    assert array.network.messages_quarantined == heap.network.messages_quarantined
    assert array.network.simulator.events_processed == heap.network.simulator.events_processed


@pytest.mark.parametrize("kind", ("synchronous", "asynchronous", "partial", "lossy", "targeted"))
def test_histories_identical_live_vs_reference_plane(kind: str):
    """The full callback-plane oracle: live vs pure/scalar, per channel.

    Live = array core + batch dispatch + hot-path recorder + columnar
    index.  Oracle = heap core + per-message dispatch + reference
    recorder + dict index — every PR 10 fast path swapped out at once,
    exactly the leg the perf bench times against.
    """
    live = _run(kind, seed=9, core="array", faulty=False)
    oracle = _run(kind, seed=9, core="heap", faulty=False, batched=False, reference=True)
    assert live.history.events == oracle.history.events
    assert live.network.messages_sent == oracle.network.messages_sent
    assert live.network.messages_delivered == oracle.network.messages_delivered
    assert live.network.messages_dropped == oracle.network.messages_dropped
    assert live.network.messages_quarantined == oracle.network.messages_quarantined
    assert live.network.simulator.events_processed == oracle.network.simulator.events_processed


@pytest.mark.parametrize("topology", ("full", "gossip", "sharded"))
def test_live_vs_reference_plane_across_topologies(topology: str):
    live = _run("synchronous", seed=5, core="array", faulty=False, topology=topology)
    oracle = _run(
        "synchronous", seed=5, core="heap", faulty=False,
        topology=topology, batched=False, reference=True,
    )
    assert live.history.events == oracle.history.events
    assert live.network.messages_sent == oracle.network.messages_sent
    assert live.network.messages_delivered == oracle.network.messages_delivered


@pytest.mark.parametrize("fault_kind", sorted(available_faults()))
def test_live_vs_reference_plane_for_every_fault_kind(fault_kind: str):
    """Membership churn and partitions exercise the dup-skip guards."""
    live = _run("lossy", seed=13, core="array", faulty=False, fault=_fault(fault_kind))
    oracle = _run(
        "lossy", seed=13, core="heap", faulty=False,
        fault=_fault(fault_kind), batched=False, reference=True,
    )
    assert live.history.events == oracle.history.events
    assert live.network.messages_delivered == oracle.network.messages_delivered
    assert live.network.messages_quarantined == oracle.network.messages_quarantined


@pytest.mark.parametrize("kind", ("synchronous", "asynchronous", "partial", "lossy", "targeted"))
def test_batch_dispatch_matches_scalar_dispatch(kind: str):
    """Isolate batch dispatch: same array core, spans on vs off."""
    batched = _run(kind, seed=17, core="array", faulty=True)
    scalar = _run(kind, seed=17, core="array", faulty=True, batched=False)
    assert batched.history.events == scalar.history.events
    assert batched.network.messages_delivered == scalar.network.messages_delivered
    assert batched.network.simulator.events_processed == scalar.network.simulator.events_processed


def test_fork_heavy_run_actually_forks():
    """Sanity: the equivalence scenarios exercise the fork-heavy shape."""
    result = _run("synchronous", seed=3, core="array", faulty=False)
    trees = [replica.tree for replica in result.replicas.values()]
    assert any(len(tree.leaves()) > 1 for tree in trees)
