"""Stream-equivalence tests for the batched channel sampling.

The batched message plane is only allowed to exist because
``delays_for(sender, receivers, now)`` is *bit-identical* to the sequence
of scalar ``delay_for`` calls it replaces: same values, same generator
state afterwards.  These tests pin that property for all five channel
models against :func:`repro.network.channels._reference_delays_for` (the
pre-batching scalar loop), across seeds, mixed self/remote fan-outs, and
the GST boundary of the partially synchronous model.
"""

from __future__ import annotations

import pytest

from repro.network.channels import (
    AsynchronousChannel,
    LossyChannel,
    PartiallySynchronousChannel,
    SynchronousChannel,
    TargetedLossChannel,
    _reference_delays_for,
    batched_delays,
)

SEEDS = (0, 1, 7, 23, 101)

#: Fan-outs mixing remote receivers, the sender itself, and duplicates.
RECEIVER_LISTS = (
    ["b", "c", "d"],
    ["a", "b", "c", "a", "d"],
    ["a"],
    ["b"] * 6,
    [],
    [f"p{i}" for i in range(25)],
)


def _factories(seed: int):
    return {
        "synchronous": lambda: SynchronousChannel(delta=2.0, min_delay=0.3, seed=seed),
        "asynchronous": lambda: AsynchronousChannel(
            mean_delay=1.5, tail_probability=0.3, tail_factor=10.0, seed=seed
        ),
        "partial": lambda: PartiallySynchronousChannel(
            gst=50.0, delta=1.0, pre_gst_mean=4.0, seed=seed
        ),
        "lossy": lambda: LossyChannel(
            SynchronousChannel(delta=1.0, seed=seed), 0.4, seed=seed + 13
        ),
        "targeted": lambda: TargetedLossChannel(
            SynchronousChannel(delta=1.0, seed=seed),
            drop_if=lambda s, r, t: r.endswith("3") or r == "c",
        ),
    }


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("model", sorted(_factories(0)))
def test_batched_equals_scalar_stream(model: str, seed: int):
    """delays_for == the scalar loop, and the streams stay aligned after."""
    make = _factories(seed)[model]
    batched_channel, scalar_channel = make(), make()
    for now in (0.0, 10.0, 49.9, 50.0, 120.0):
        for receivers in RECEIVER_LISTS:
            batch = batched_channel.delays_for("a", receivers, now)
            scalar = _reference_delays_for(scalar_channel, "a", receivers, now)
            assert batch == scalar, (model, seed, now, receivers)
    # Generator state must match too: the next scalar draws agree.
    for _ in range(5):
        assert batched_channel.delay_for("a", "z", 60.0) == scalar_channel.delay_for(
            "a", "z", 60.0
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_partial_synchrony_gst_boundary(seed: int):
    """Batches straddle nothing: a multicast is entirely pre- or post-GST."""
    gst = 50.0
    make = lambda: PartiallySynchronousChannel(gst=gst, delta=1.0, pre_gst_mean=5.0, seed=seed)
    batched_channel, scalar_channel = make(), make()
    receivers = [f"p{i}" for i in range(12)]
    for now in (gst - 1e-9, gst, gst + 1e-9):
        batch = batched_channel.delays_for("a", receivers, now)
        scalar = _reference_delays_for(scalar_channel, "a", receivers, now)
        assert batch == scalar
    # At/after GST every delay honours the synchronous bound.
    post = batched_channel.delays_for("a", receivers, gst)
    assert all(d is not None and d <= 1.0 for d in post)
    # Before GST the asynchronous model is in charge: same draw count, no bound check.
    pre = batched_channel.delays_for("a", receivers, gst - 1e-9)
    assert len(pre) == len(receivers)


@pytest.mark.parametrize("seed", SEEDS)
def test_lossy_drop_accounting_matches_scalar(seed: int):
    make = lambda: LossyChannel(SynchronousChannel(delta=1.0, seed=seed), 0.5, seed=seed)
    batched_channel, scalar_channel = make(), make()
    receivers = [f"p{i}" for i in range(40)] + ["a"]
    batch = batched_channel.delays_for("a", receivers, 0.0)
    scalar = _reference_delays_for(scalar_channel, "a", receivers, 0.0)
    assert batch == scalar
    assert batched_channel.dropped == scalar_channel.dropped > 0
    # Self-addressed messages never drop.
    assert batch[-1] == 0.0


def test_targeted_drop_counter_and_self_exemption():
    channel = TargetedLossChannel(
        SynchronousChannel(seed=1), drop_if=lambda s, r, t: True
    )
    delays = channel.delays_for("a", ["a", "b", "c"], 0.0)
    assert delays[0] == 0.0 and delays[1] is None and delays[2] is None
    assert channel.dropped == 2


def test_interleaved_batched_and_scalar_calls_stay_aligned():
    """Mixing batch and scalar calls on one channel matches an all-scalar twin."""
    a = SynchronousChannel(delta=2.0, seed=9)
    b = SynchronousChannel(delta=2.0, seed=9)
    trace_a = []
    trace_a.extend(a.delays_for("s", ["p0", "p1", "p2"], 0.0))
    trace_a.append(a.delay_for("s", "p3", 0.0))
    trace_a.extend(a.delays_for("s", ["p4", "s", "p5"], 1.0))
    trace_b = [b.delay_for("s", p, 0.0) for p in ("p0", "p1", "p2", "p3")]
    trace_b.extend(b.delay_for("s", p, 1.0) for p in ("p4", "s", "p5"))
    assert trace_a == trace_b


class _ScalarOnly:
    """A third-party channel model: scalar ``delay_for`` only."""

    def __init__(self) -> None:
        self.calls = []

    def delay_for(self, sender, receiver, now):
        self.calls.append(receiver)
        return 0.5

    # no delays_for on purpose


def test_batched_delays_falls_back_to_scalar_loop():
    channel = _ScalarOnly()
    assert batched_delays(channel, "a", ["b", "c"], 0.0) == [0.5, 0.5]
    assert channel.calls == ["b", "c"]


def test_wrappers_accept_scalar_only_inner_models():
    """Lossy/targeted wrappers batch over any ChannelModel, batched or not."""
    lossy = LossyChannel(_ScalarOnly(), 0.0, seed=3)
    assert lossy.delays_for("a", ["b", "c", "a"], 0.0) == [0.5, 0.5, 0.5]
    targeted = TargetedLossChannel(_ScalarOnly(), drop_if=lambda s, r, t: r == "b")
    assert targeted.delays_for("a", ["b", "c"], 0.0) == [None, 0.5]
