"""Unit tests for the array-native event calendar.

Covers the :class:`~repro.network.simulator.Simulator` surface under both
cores — scalar pushes, bulk inserts, fan-outs, block scheduling, the
``until``/``max_events`` run contract — plus the array core's internals:
method-table interning and recycling, the overflow heap for pushes into
the active slot, and the pure-Python drain fallback.  The protocol-level
byte-identity suite lives in ``test_core_equivalence.py``; here the
focus is the event-core API itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import UnknownVocabularyError
from repro.network.event_core import (
    DRAIN_COMPILED,
    EVENT_DTYPE,
    NO_ARG,
    ArrayEventCore,
)
from repro.network.simulator import Simulator


def _trace_run(core: str, build) -> list:
    """Run ``build(sim, trace)`` under ``core`` and return the fired trace."""
    sim = Simulator(core=core)
    trace: list = []
    build(sim, trace)
    sim.run()
    return trace


def _both_cores_agree(build) -> list:
    array = _trace_run("array", build)
    heap = _trace_run("heap", build)
    assert array == heap
    return array


# -- construction ------------------------------------------------------------


def test_unknown_core_rejected():
    with pytest.raises(UnknownVocabularyError):
        Simulator(core="wheel")


def test_slot_width_must_be_positive():
    with pytest.raises(ValueError):
        ArrayEventCore(slot_width=0.0)
    with pytest.raises(ValueError):
        ArrayEventCore(slot_width=-1.0)


def test_event_dtype_shape():
    assert EVENT_DTYPE.names == ("time", "seq", "method", "arg")


def test_pure_python_fallback_is_live():
    """No compiler in this environment: the drain loop must be the
    pure-Python module, and everything still works through it."""
    assert DRAIN_COMPILED is False
    sim = Simulator(core="array")
    fired = []
    sim.schedule(1.0, lambda: fired.append("x"))
    assert sim.run() == 1
    assert fired == ["x"]


# -- scalar scheduling -------------------------------------------------------


@pytest.mark.parametrize("core", ("array", "heap"))
def test_scalar_api_matrix(core: str):
    sim = Simulator(core=core)
    trace = []
    sim.schedule(2.0, lambda: trace.append(("schedule", sim.now)))
    sim.schedule_at(1.0, lambda: trace.append(("schedule_at", sim.now)))
    sim.call_at(3.0, lambda arg: trace.append(("call_at", arg)), None)
    assert sim.pending == 3
    assert sim.run() == 3
    # call_at with a legitimate None argument still invokes method(None).
    assert trace == [("schedule_at", 1.0), ("schedule", 2.0), ("call_at", None)]
    assert sim.pending == 0


@pytest.mark.parametrize("core", ("array", "heap"))
def test_past_scheduling_rejected(core: str):
    sim = Simulator(core=core)
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.now == 1.0
    with pytest.raises(ValueError):
        sim.schedule(-0.5, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)
    with pytest.raises(ValueError):
        sim.call_at(0.5, lambda arg: None, "x")
    with pytest.raises(ValueError):
        sim.schedule_block([0.5], lambda arg: None, ["x"])


def test_same_time_ties_resolve_in_insertion_order():
    def build(sim, trace):
        for label in ("a", "b", "c", "d"):
            sim.call_at(5.0, trace.append, label)

    assert _both_cores_agree(build) == ["a", "b", "c", "d"]


# -- schedule_many -----------------------------------------------------------


def test_schedule_many_accepts_one_shot_generator():
    """The generator-safety regression: a lazily built fan-out must be
    materialized exactly once, not silently re-iterated or half-consumed."""
    sim = Simulator(core="array")
    trace = []
    entries = ((float(i), trace.append, i) for i in range(5))
    assert sim.schedule_many(entries) == 5
    assert sim.pending == 5
    sim.run()
    assert trace == [0, 1, 2, 3, 4]


def test_schedule_many_seq_parity_with_call_at():
    """A batch tie-breaks exactly like the same entries pushed one by one."""

    def batched(sim, trace):
        sim.call_at(1.0, trace.append, "first")
        sim.schedule_many([(1.0, trace.append, "m0"), (1.0, trace.append, "m1")])
        sim.call_at(1.0, trace.append, "last")

    def scalar(sim, trace):
        sim.call_at(1.0, trace.append, "first")
        sim.call_at(1.0, trace.append, "m0")
        sim.call_at(1.0, trace.append, "m1")
        sim.call_at(1.0, trace.append, "last")

    for core in ("array", "heap"):
        assert _trace_run(core, batched) == _trace_run(core, scalar)
    assert _both_cores_agree(batched) == ["first", "m0", "m1", "last"]


def test_schedule_many_validates_before_inserting():
    """The array core rejects the whole batch atomically."""
    sim = Simulator(core="array")
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_many([(2.0, lambda a: None, "ok"), (0.5, lambda a: None, "past")])
    assert sim.pending == 0


def test_schedule_many_empty_batch():
    sim = Simulator(core="array")
    assert sim.schedule_many([]) == 0
    assert sim.schedule_many(iter(())) == 0
    assert sim.pending == 0


def test_schedule_many_spanning_many_slots():
    """A batch wider than one 0.25 time slot lands in many buckets but
    fires in global (time, seq) order regardless."""

    def build(sim, trace):
        times = [7.9, 0.1, 3.3, 3.3, 12.0, 0.1]
        sim.schedule_many([(t, trace.append, (t, i)) for i, t in enumerate(times)])

    trace = _both_cores_agree(build)
    assert trace == [(0.1, 1), (0.1, 5), (3.3, 2), (3.3, 3), (7.9, 0), (12.0, 4)]


# -- schedule_fanout / schedule_block ----------------------------------------


def test_schedule_fanout_skips_dropped_recipients():
    """``None`` delays are dropped and consume no sequence number, so the
    surviving entries tie-break identically across cores."""

    def build(sim, trace):
        sim.schedule_fanout(
            [1.0, None, 1.0, None], trace.append, ["r0", "r1", "r2", "r3"]
        )
        sim.call_at(1.0, trace.append, "after")

    assert _both_cores_agree(build) == ["r0", "r2", "after"]


def test_schedule_fanout_all_dropped():
    sim = Simulator(core="array")
    assert sim.schedule_fanout([None, None], lambda a: None, ["a", "b"]) == 0
    assert sim.pending == 0


def test_schedule_block_takes_numpy_times():
    def build(sim, trace):
        times = np.array([4.0, 1.5, 1.5, 9.25], dtype=np.float64)
        assert sim.schedule_block(times, trace.append, ["a", "b", "c", "d"]) == 4

    assert _both_cores_agree(build) == ["b", "c", "a", "d"]


def test_schedule_block_interleaves_with_scalar_pushes():
    def build(sim, trace):
        sim.call_at(1.5, trace.append, "scalar-before")
        sim.schedule_block(np.array([1.5, 2.5]), trace.append, ["blk0", "blk1"])
        sim.call_at(1.5, trace.append, "scalar-after")

    assert _both_cores_agree(build) == ["scalar-before", "blk0", "scalar-after", "blk1"]


# -- run contract ------------------------------------------------------------


@pytest.mark.parametrize("core", ("array", "heap"))
def test_until_leaves_later_events_queued(core: str):
    sim = Simulator(core=core)
    trace = []
    for t in (1.0, 2.0, 3.0, 4.0):
        sim.call_at(t, trace.append, t)
    # An event at exactly ``until`` is still processed.
    assert sim.run(until=2.0) == 2
    assert trace == [1.0, 2.0]
    assert sim.pending == 2
    assert sim.now == 2.0
    assert sim.run() == 2
    assert trace == [1.0, 2.0, 3.0, 4.0]


@pytest.mark.parametrize("core", ("array", "heap"))
def test_until_advances_clock_on_empty_queue(core: str):
    sim = Simulator(core=core)
    assert sim.run(until=7.5) == 0
    assert sim.now == 7.5


@pytest.mark.parametrize("core", ("array", "heap"))
def test_max_events_guards_runaway_protocols(core: str):
    sim = Simulator(core=core)

    def rearm() -> None:
        sim.schedule(1.0, rearm)

    sim.schedule(1.0, rearm)
    with pytest.raises(RuntimeError, match="did not quiesce"):
        sim.run(max_events=100)
    assert sim.events_processed == 100


def test_events_scheduled_into_active_slot_interleave_in_order():
    """Pushes landing in the slot currently being drained go through the
    overflow heap but still fire in exact (time, seq) order."""

    def build(sim, trace):
        def fires_first() -> None:
            trace.append("first")
            # Same virtual time, scheduled mid-drain: must run after the
            # already-queued "second" (its seq is larger).
            sim.call_at(sim.now, trace.append, "injected-now")
            sim.call_at(sim.now + 0.01, trace.append, "injected-soon")

        sim.schedule(1.0, fires_first)
        sim.call_at(1.0, trace.append, "second")
        sim.call_at(1.02, trace.append, "third")

    assert _both_cores_agree(build) == [
        "first",
        "second",
        "injected-now",
        "injected-soon",
        "third",
    ]


# -- randomized core parity --------------------------------------------------


@pytest.mark.parametrize("seed", (0, 1, 2))
def test_randomized_mixed_workload_parity(seed: int):
    """A random mix of every insertion API fires identically under both
    cores, including re-entrant scheduling from inside callbacks."""

    def build(sim, trace):
        rng = np.random.default_rng(seed)

        def reentrant(tag) -> None:
            trace.append(tag)
            if rng.random() < 0.3:
                sim.call_at(
                    sim.now + float(rng.uniform(0.0, 2.0)), trace.append, (tag, "child")
                )

        for i in range(60):
            kind = int(rng.integers(0, 4))
            t = float(rng.uniform(0.0, 20.0))
            if kind == 0:
                sim.call_at(t, reentrant, ("call_at", i))
            elif kind == 1:
                sim.schedule_many(
                    [
                        (t + float(d), reentrant, ("many", i, j))
                        for j, d in enumerate(rng.uniform(0.0, 5.0, size=3))
                    ]
                )
            elif kind == 2:
                times = t + rng.uniform(0.0, 5.0, size=4)
                sim.schedule_block(times, reentrant, [("block", i, j) for j in range(4)])
            else:
                delays = [
                    None if rng.random() < 0.25 else float(d)
                    for d in rng.uniform(0.0, 3.0, size=3)
                ]
                sim.schedule_fanout(delays, reentrant, [("fan", i, j) for j in range(3)])

    trace = _both_cores_agree(build)
    assert len(trace) > 100


# -- method-table interning --------------------------------------------------


def test_method_table_interns_shared_callbacks():
    core = ArrayEventCore()
    sink = []
    for t in (1.0, 1.1, 1.2):
        core.push(t, sink.append, "x")
    # One live table entry, refcounted three times.
    assert len(core._methods) == 1
    assert core._method_refs[0] == 3


def test_method_table_recycles_slots_across_drains():
    """One-shot closures cannot exhaust the i2 index space: drained
    buckets release their methods and the slots are reused."""
    sim = Simulator(core="array")
    core = sim._array_core
    for round_no in range(6):
        for i in range(40):
            sim.schedule(0.1 + i * 0.001, lambda i=i: None)  # 40 distinct closures
        sim.run()
    # Without recycling the table would hold 240 entries by now.
    assert len(core._methods) <= 80
    assert not core._method_ids  # nothing live between runs


def test_method_table_exhaustion_raises():
    core = ArrayEventCore()
    core._methods = [None] * 32768  # simulate a full table
    core._method_refs = [1] * 32768
    with pytest.raises(RuntimeError, match="method-dispatch table exhausted"):
        core._intern_method(lambda: None, 1)


def test_no_arg_sentinel_identity():
    """Both cores dispatch no-argument callbacks on the same sentinel."""
    from repro.network import simulator as sim_mod

    assert sim_mod._NO_ARG is NO_ARG
