"""The registered adversary vocabulary (``@register_fault``).

Covers the registry contract (collision, uniform unknown-name error,
seed forwarding), each fault model's constructor validation, and the two
equivalence bars the tentpole demands:

* ``crash`` and ``silent`` built through the registry must reproduce the
  retained legacy runners event-for-event (identical ``History.events``);
* the healing adversaries (``partition``, ``churn``, ``eclipse``) must
  actually degrade the run while active and actually recover after their
  heal time, as observed by the :class:`DegradationMonitor`.
"""

from __future__ import annotations

import pytest

from repro.core.errors import UnknownVocabularyError
from repro.network.channels import SynchronousChannel
from repro.network.faults import (
    FAULT_REGISTRY,
    ChurnFault,
    CrashFault,
    EclipseFault,
    FaultModel,
    PartitionFault,
    SilentFault,
    available_faults,
    build_fault,
    get_fault,
    register_fault,
    state_sync,
)
from repro.protocols.faults import run_bitcoin_with_crashes, run_committee_with_byzantine
from repro.protocols.nakamoto import run_bitcoin


class TestRegistry:
    def test_shipped_vocabulary(self):
        assert set(available_faults()) >= {"crash", "silent", "churn", "partition", "eclipse"}

    def test_get_fault_resolves(self):
        assert get_fault("partition") is PartitionFault

    def test_unknown_kind_raises_uniform_vocabulary_error(self):
        with pytest.raises(UnknownVocabularyError) as excinfo:
            get_fault("gremlins")
        message = str(excinfo.value)
        assert message.startswith("unknown fault 'gremlins'; registered:")
        assert "'partition'" in message

    def test_collision_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_fault("crash")(CrashFault)

    def test_build_fault_skips_seed_for_seedless_faults(self):
        # None of the shipped faults take a seed; build_fault must not
        # force one on them (the TypeError would name 'seed').
        fault = build_fault("eclipse", {"victim": "p0", "until": 5.0}, seed=123)
        assert isinstance(fault, EclipseFault)

    def test_registry_is_open(self):
        @register_fault("test-jitter")
        class JitterFault(FaultModel):
            def __init__(self, seed: int = 0) -> None:
                self.seed = seed

        try:
            fault = build_fault("test-jitter", {}, seed=99)
            assert fault.seed == 99  # seed forwarded when accepted
        finally:
            del FAULT_REGISTRY["test-jitter"]


class TestValidation:
    def test_crash_rejects_negative_time(self):
        with pytest.raises(ValueError, match="non-negative"):
            CrashFault(at={"p0": -1.0})

    def test_churn_rejects_join_without_leave(self):
        with pytest.raises(ValueError, match="never leave"):
            ChurnFault(leave={"p0": 5.0}, join={"p1": 9.0})

    def test_churn_rejects_rejoin_before_departure(self):
        with pytest.raises(ValueError, match="strictly after"):
            ChurnFault(leave={"p0": 5.0}, join={"p0": 5.0})

    def test_partition_rejects_overlapping_groups(self):
        with pytest.raises(ValueError, match="two groups"):
            PartitionFault(groups=[["p0", "p1"], ["p1"]])

    def test_partition_rejects_heal_before_split(self):
        with pytest.raises(ValueError, match="heal_at"):
            PartitionFault(groups=[["p0"], ["p1"]], at=10.0, heal_at=10.0)

    def test_eclipse_rejects_empty_window(self):
        with pytest.raises(ValueError, match="end after"):
            EclipseFault(victim="p0", at=5.0, until=5.0)

    @pytest.mark.parametrize(
        "fault",
        (
            CrashFault(at={"p9": 1.0}),
            SilentFault(members=("p9",)),
            ChurnFault(leave={"p9": 1.0}),
            PartitionFault(groups=[["p0"], ["p9"]]),
            EclipseFault(victim="p9", until=5.0),
        ),
    )
    def test_install_rejects_unknown_replicas(self, fault):
        with pytest.raises(ValueError, match="unknown"):
            run_bitcoin(n=3, duration=10.0, seed=1, fault=fault)


class TestLegacyEquivalence:
    def test_crash_fault_matches_legacy_runner_event_for_event(self):
        legacy = run_bitcoin_with_crashes(
            n=5, duration=120.0, token_rate=0.3, seed=17, crash_at={"p4": 30.0, "p2": 60.0}
        )
        registered = run_bitcoin(
            n=5,
            duration=120.0,
            token_rate=0.3,
            seed=17,
            channel=SynchronousChannel(delta=1.0, seed=17),
            fault=build_fault("crash", {"at": {"p4": 30.0, "p2": 60.0}}),
        )
        assert legacy.history.events == registered.history.events
        assert not registered.replicas["p4"].alive
        assert not registered.replicas["p2"].alive
        assert legacy.network.messages_sent == registered.network.messages_sent

    def test_silent_fault_matches_legacy_runner_event_for_event(self):
        legacy = run_committee_with_byzantine(n=7, duration=120.0, seed=5, byzantine=("p5", "p6"))
        registered = run_committee_with_byzantine(
            n=7,
            duration=120.0,
            seed=5,
            byzantine=(),
            fault=build_fault("silent", {"members": ("p5", "p6")}),
        )
        assert legacy.history.events == registered.history.events
        assert registered.replicas["p5"].byzantine
        assert registered.replicas["p6"].byzantine
        assert legacy.network.messages_sent == registered.network.messages_sent


def _partition_fault(heal_at):
    return PartitionFault(
        groups=[["p0", "p1", "p2"], ["p3", "p4", "p5"]], at=15.0, heal_at=heal_at
    )


class TestHealingAdversaries:
    def test_partition_splits_then_heals(self):
        result = run_bitcoin(
            n=6, duration=120.0, token_rate=0.4, seed=3, fault=_partition_fault(60.0)
        )
        degradation = result.degradation
        assert degradation.max_divergence_depth > 0  # genuinely split-brain
        assert degradation.current_divergence_depth == 0  # converged again
        assert degradation.time_to_heal is not None
        assert degradation.time_to_heal >= 0.0
        tips = {chain.tip.block_id for chain in result.final_chains().values()}
        assert len(tips) == 1

    def test_partition_without_heal_stays_diverged(self):
        result = run_bitcoin(
            n=6, duration=120.0, token_rate=0.4, seed=3, fault=_partition_fault(None)
        )
        degradation = result.degradation
        assert degradation.current_divergence_depth > 0
        assert degradation.heal_at is None
        assert degradation.time_to_heal is None

    def test_churn_quarantines_and_reconverges(self):
        fault = ChurnFault(leave={"p4": 20.0, "p5": 35.0}, join={"p4": 70.0, "p5": 60.0})
        result = run_bitcoin(n=6, duration=120.0, token_rate=0.4, seed=3, fault=fault)
        assert fault.heal_time() == 70.0
        # All six replicas end on one tip, including the two rejoiners.
        tips = {chain.tip.block_id for chain in result.final_chains().values()}
        assert len(tips) == 1
        assert result.replicas["p4"].alive and result.replicas["p5"].alive
        network = result.network
        assert network.messages_sent == (
            network.messages_delivered
            + network.messages_dropped
            + network.messages_quarantined
        )

    def test_churn_without_rejoin_removes_member_for_good(self):
        fault = ChurnFault(leave={"p5": 20.0})
        result = run_bitcoin(n=6, duration=80.0, token_rate=0.4, seed=3, fault=fault)
        assert fault.heal_time() is None
        assert "p5" not in result.network.process_ids
        assert not result.replicas["p5"].alive

    def test_eclipse_isolates_then_reconciles(self):
        fault = EclipseFault(victim="p2", at=10.0, until=50.0)
        result = run_bitcoin(n=6, duration=120.0, token_rate=0.4, seed=3, fault=fault)
        degradation = result.degradation
        assert degradation.heal_at == 50.0
        assert degradation.current_divergence_depth == 0
        tips = {chain.tip.block_id for chain in result.final_chains().values()}
        assert len(tips) == 1

    def test_fault_free_history_unchanged_by_noop_fault(self):
        """The fault-run staging loop is event-identical to network.start()."""
        plain = run_bitcoin(n=4, duration=60.0, token_rate=0.4, seed=11)
        noop = run_bitcoin(
            n=4, duration=60.0, token_rate=0.4, seed=11, fault=CrashFault(at={})
        )
        assert plain.history.events == noop.history.events
        assert plain.degradation is None
        assert noop.degradation is not None  # monitor attached, run unperturbed


class TestStateSync:
    def test_sync_is_idempotent_on_agreeing_replicas(self):
        result = run_bitcoin(n=4, duration=60.0, token_rate=0.4, seed=11)
        assert state_sync(result.network) == 0

    def test_sync_merges_diverged_views(self):
        result = run_bitcoin(
            n=6, duration=60.0, token_rate=0.4, seed=3, fault=_partition_fault(None)
        )
        # Still split-brain at the end of the run; a manual sweep merges.
        assert state_sync(result.network) > 0
        sizes = {len(replica.tree) for replica in result.replicas.values()}
        assert len(sizes) == 1

    def test_sync_skips_deregistered_targets(self):
        """Pin: syncing toward departed replicas is a no-op, not a KeyError.

        A heal-time sweep can race membership — every member of one
        partition side may have churned out before ``heal_at`` fires.
        ``state_sync`` must quietly skip pids no longer registered (or no
        longer alive) rather than index into a membership map that lost
        them.
        """
        result = run_bitcoin(
            n=6, duration=60.0, token_rate=0.4, seed=3, fault=_partition_fault(None)
        )
        network = result.network
        departed = ["p4", "p5"]
        for pid in departed:
            network.deregister(pid)
            result.replicas[pid].crash()
        # Explicit targets naming only departed replicas: nothing to do.
        assert state_sync(network, targets=departed) == 0
        # The global sweep still merges the registered replicas' diverged
        # views (p3 kept the other side of the split alive).
        assert state_sync(network) > 0
        sizes = {len(result.replicas[pid].tree) for pid in ("p0", "p1", "p2", "p3")}
        assert len(sizes) == 1

    def test_partition_heals_after_entire_group_churned_out(self):
        """Pin: a heal whose group membership emptied mid-run completes.

        Group B (p3..p5) leaves for good at t=25; the partition heals at
        t=60, triggering the global ``state_sync`` sweep while one whole
        side of the split is deregistered.  The run must finish with the
        survivors converged — not die on the vanished membership.
        """

        class _SplitThenExodus(FaultModel):
            def __init__(self):
                self.partition = _partition_fault(60.0)
                self.churn = ChurnFault(
                    leave={"p3": 25.0, "p4": 25.0, "p5": 25.0}
                )

            def install(self, network):
                self.partition.install(network)
                self.churn.install(network)

            def after_start(self, network):
                self.partition.after_start(network)
                self.churn.after_start(network)

            def heal_time(self):
                return self.partition.heal_time()

        result = run_bitcoin(
            n=6, duration=120.0, token_rate=0.4, seed=3, fault=_SplitThenExodus()
        )
        assert set(result.network.process_ids) == {"p0", "p1", "p2"}
        tips = {
            chain.tip.block_id
            for pid, chain in result.final_chains().items()
            if pid in ("p0", "p1", "p2")
        }
        assert len(tips) == 1
