"""Unit tests for the batch-dispatch half of the compiled callback plane.

The protocol-level byte-identity suite lives in
``test_core_equivalence.py``; here the focus is the dispatch machinery
itself: ``schedule_fanout`` degenerate delay vectors, batch-vs-scalar
delivery parity under mid-batch membership churn and crashes, the
``on_message_batch`` consumption contract, and the stock-hook guards
behind ``batch_dup_seen`` (the span-level duplicate-flood skip).
"""

from __future__ import annotations

import pytest

from repro.core.selection import HeaviestChain
from repro.network.channels import SynchronousChannel
from repro.network.event_core import COMPILED_MODULES, DRAIN_COMPILED
from repro.network.process import Process
from repro.network.simulator import Network, Simulator
from repro.oracle.tape import TapeFamily
from repro.oracle.theta import ProdigalOracle
from repro.protocols.base import ReplicaConfig, run_protocol
from repro.protocols.nakamoto import NakamotoReplica


class LoggingProcess(Process):
    """Logs every delivery as ``(now, pid, payload)`` into a shared list."""

    def __init__(self, pid: str, log: list) -> None:
        super().__init__(pid)
        self.log = log

    def on_message(self, message) -> None:
        self.log.append((self.network.simulator.now, self.pid, message.payload))


class Saboteur(LoggingProcess):
    """Deregisters/kills peers mid-run, so batches are torn mid-span."""

    def on_message(self, message) -> None:
        super().on_message(message)
        if message.payload == "kill" and "victim" in self.network._processes:
            self.network.deregister("victim")
        if message.payload == "die":
            self.alive = False


# -- schedule_fanout degenerate delay vectors --------------------------------


@pytest.mark.parametrize("core", ("array", "heap"))
def test_schedule_fanout_all_none_delays(core: str):
    """An all-dropped fan-out schedules nothing and fires nothing."""
    sim = Simulator(core=core)
    fired: list = []
    assert sim.schedule_fanout([None, None, None], fired.append, ["a", "b", "c"]) == 0
    assert sim.run() == 0
    assert fired == []
    # The queue is genuinely untouched: the next fan-out starts clean.
    assert sim.schedule_fanout([1.0, None], fired.append, ["d", "e"]) == 1
    assert sim.run() == 1
    assert fired == ["d"]


@pytest.mark.parametrize("core", ("array", "heap"))
@pytest.mark.parametrize("width", (3, 40))
def test_schedule_fanout_mixed_none_keeps_survivors_in_order(core: str, width: int):
    """Dropped slots vanish; survivors keep vector order (both staging
    paths: the <16 scalar one and the vectorized block insert)."""
    sim = Simulator(core=core)
    fired: list = []
    delays = [None if i % 3 == 0 else 1.0 for i in range(width)]
    args = [f"r{i}" for i in range(width)]
    kept = [a for d, a in zip(delays, args) if d is not None]
    assert sim.schedule_fanout(delays, fired.append, args) == len(kept)
    sim.run()
    assert fired == kept


# -- batch vs scalar dispatch parity -----------------------------------------


def _run_plane(batched: bool):
    sim = Simulator(core="array")
    channel = SynchronousChannel(delta=2.0, min_delay=0.5, seed=7)
    network = Network(sim, channel, batched=batched)
    log: list = []
    network.register(LoggingProcess("a", log))
    network.register(Saboteur("b", log))
    network.register(LoggingProcess("victim", log))
    for i in range(4):
        network.register(LoggingProcess(f"p{i}", log))

    def burst(payload):
        network.broadcast("a", "data", payload, include_self=False)

    for i in range(6):
        sim.schedule(float(i), lambda p=f"msg{i}": burst(p))
    sim.schedule(2.5, lambda: burst("kill"))
    sim.schedule(4.5, lambda: burst("die"))
    sim.run()
    return log, network


def test_batched_network_matches_scalar_with_mid_batch_churn():
    """Same deliveries, same order, same counters — even though the
    batched plane tears spans when a receiver departs or dies mid-run."""
    batched_log, batched_net = _run_plane(batched=True)
    scalar_log, scalar_net = _run_plane(batched=False)
    assert batched_log == scalar_log
    assert batched_net.messages_sent == scalar_net.messages_sent
    assert batched_net.messages_delivered == scalar_net.messages_delivered
    assert batched_net.messages_quarantined == scalar_net.messages_quarantined
    assert batched_net.simulator.events_processed == scalar_net.simulator.events_processed
    # The run actually exercised the interesting paths.
    assert batched_net.messages_quarantined > 0
    assert any(entry[2] == "die" for entry in batched_log)
    # Once "b" processed its "die", nothing further was delivered to it.
    b_entries = [entry for entry in batched_log if entry[1] == "b"]
    assert b_entries[-1][2] == "die"


# -- on_message_batch consumption contract -----------------------------------


class BadBatcher(LoggingProcess):
    def __init__(self, pid, log, consumed):
        super().__init__(pid, log)
        self.consumed = consumed

    def on_message_batch(self, deliveries) -> int:
        return self.consumed


@pytest.mark.parametrize("consumed", (0, 99))
def test_on_message_batch_consumption_bounds_enforced(consumed: int):
    """Consuming nothing (livelock) or more than was handed over
    (skipped deliveries) is a contract violation, not a silent drift."""
    sim = Simulator(core="array")
    network = Network(sim, SynchronousChannel(delta=1.0, min_delay=0.5, seed=3))
    log: list = []
    network.register(LoggingProcess("a", log))
    network.register(BadBatcher("bad", log, consumed))
    for i in range(4):
        network.send("a", "bad", "data", f"m{i}")
    with pytest.raises(RuntimeError, match="on_message_batch consumed"):
        sim.run()


def test_partial_batch_consumption_redispatches_remainder():
    """A batch consumed halfway resumes through the scalar guards."""

    class TwoAtATime(LoggingProcess):
        def on_message_batch(self, deliveries) -> int:
            limit = min(2, len(deliveries))
            return super().on_message_batch(deliveries[:limit])

    sim = Simulator(core="array")
    network = Network(sim, SynchronousChannel(delta=1.0, min_delay=0.5, seed=3))
    log: list = []
    network.register(LoggingProcess("a", log))
    network.register(TwoAtATime("slow", log))
    for i in range(5):
        network.send("a", "slow", "data", f"m{i}")
    sim.run()
    assert sorted(entry[2] for entry in log) == [f"m{i}" for i in range(5)]
    assert network.messages_delivered == 5


# -- batch_dup_seen stock-hook guards ----------------------------------------


def _tiny_protocol_run(factory_cls):
    tapes = TapeFamily(seed=5, probability_scale=0.5)
    oracle = ProdigalOracle(tapes=tapes)

    def factory(pid, orc, network):  # noqa: ARG001
        config = ReplicaConfig(selection=HeaviestChain(), use_lrc=True, merit=0.2)
        return factory_cls(pid, orc, config, mining_interval=2.0)

    return run_protocol("dup-seen", factory, oracle, n=3, duration=20.0)


def test_plain_process_exposes_no_dup_seen():
    assert Process("p").batch_dup_seen() is None


def test_stock_replica_exposes_transport_seen_set():
    result = _tiny_protocol_run(NakamotoReplica)
    replica = result.replicas["p0"]
    seen = replica.batch_dup_seen()
    assert seen is replica.transport._delivered
    assert seen, "the run delivered blocks, so the seen-set is non-empty"


def test_overriding_on_message_disables_dup_skip():
    """An adversary that inspects duplicates must see every delivery."""

    class DupWatcher(NakamotoReplica):
        def on_message(self, message) -> None:
            super().on_message(message)

    result = _tiny_protocol_run(DupWatcher)
    assert result.replicas["p0"].batch_dup_seen() is None


# -- compiled-flavour report --------------------------------------------------


def test_compiled_modules_report_shape():
    assert set(COMPILED_MODULES) == {"_drain", "_hotpath"}
    assert all(isinstance(flag, bool) for flag in COMPILED_MODULES.values())
    # Back-compat alias used by the pre-PR10 floor assertions.
    assert DRAIN_COMPILED is COMPILED_MODULES["_drain"]
