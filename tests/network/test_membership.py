"""Dynamic membership: ``Network.deregister`` and cache invalidation.

The churn fault removes processes mid-run, which is the first time the
network's lazily built receiver caches — the full-mesh ``_others``
exclusion cache and the static-topology receiver cache — can shrink
rather than grow.  These are the regression tests that membership
*removal* invalidates both caches (a stale entry would keep fanning out
to the departed process), that in-flight deliveries addressed to a
departed process are quarantined instead of crashing the run, and that
re-registration (a churn rejoin) restores delivery without resetting the
process's transport wiring.
"""

from __future__ import annotations

import pytest

from repro.network.channels import SynchronousChannel
from repro.network.process import Process
from repro.network.simulator import Message, Network, Simulator
from repro.network.topology import Committee


class Echo(Process):
    """Test process that logs every delivery."""

    def __init__(self, pid: str) -> None:
        super().__init__(pid)
        self.received: list[Message] = []

    def on_message(self, message: Message) -> None:
        self.received.append(message)


def _network(n: int = 4, topology=None, delta: float = 1.0):
    simulator = Simulator()
    network = Network(simulator, SynchronousChannel(delta=delta, seed=1), topology=topology)
    processes = [Echo(f"p{i}") for i in range(n)]
    for process in processes:
        network.register(process)
    return simulator, network, processes


class TestDeregister:
    def test_unknown_pid_rejected(self):
        _, network, _ = _network()
        with pytest.raises(KeyError, match="unknown process"):
            network.deregister("p9")

    def test_membership_and_departed_bookkeeping(self):
        _, network, processes = _network()
        removed = network.deregister("p2")
        assert removed is processes[2]
        assert network.process_ids == ("p0", "p1", "p3")
        # Re-registering clears the departed mark and restores membership.
        network.register(removed)
        assert network.process_ids == ("p0", "p1", "p3", "p2")

    def test_fullmesh_others_cache_invalidated_on_removal(self):
        simulator, network, processes = _network()
        # Populate the ``_others`` exclusion cache via a relay-style
        # broadcast, then remove a member: a stale cache entry would keep
        # fanning out to the departed process.
        processes[0].broadcast("ping", None, include_self=False)
        assert network._others  # cache is populated
        network.deregister("p3")
        assert not network._others  # invalidated by removal
        processes[0].broadcast("ping", None, include_self=False)
        simulator.run()
        assert [m.receiver for m in sum((p.received for p in processes[:3]), [])].count("p3") == 0
        assert processes[3].received == []
        # Two broadcasts: 3 receivers before the removal, 2 after.
        assert network.messages_sent == 5

    def test_topology_receiver_cache_invalidated_on_removal(self):
        topology = Committee(members=("p0", "p1"))
        simulator, network, processes = _network(topology=topology)
        processes[0].broadcast("decide", None, include_self=False)
        assert network._topology_receivers  # static topology cache populated
        network.deregister("p2")
        assert not network._topology_receivers
        processes[0].broadcast("decide", None, include_self=False)
        simulator.run()
        # A committee member fans out to everyone *currently* registered:
        # 3 peers in the first broadcast, 2 after p2 left.  p2's pre-removal
        # delivery was still in flight when it left, so it is quarantined.
        assert len(processes[1].received) == 2
        assert len(processes[2].received) == 0
        assert len(processes[3].received) == 2
        assert network.messages_quarantined == 1

    def test_in_flight_deliveries_are_quarantined(self):
        simulator, network, processes = _network()
        processes[0].broadcast("ping", None, include_self=False)
        # Deliveries are in flight (scheduled, not yet executed); the
        # receiver leaving must absorb them rather than raise.
        network.deregister("p1")
        simulator.run()
        assert processes[1].received == []
        assert network.messages_quarantined == 1
        assert network.messages_sent == (
            network.messages_delivered + network.messages_dropped + network.messages_quarantined
        )

    def test_late_sends_to_departed_are_quarantined_not_fatal(self):
        simulator, network, processes = _network()
        network.deregister("p1")
        assert processes[0].send("p1", "ping", None) is False
        assert network.messages_quarantined == 1
        with pytest.raises(KeyError, match="unknown receiver"):
            processes[0].send("p9", "ping", None)

    def test_departed_sender_is_silently_absorbed(self):
        simulator, network, processes = _network()
        network.deregister("p1")
        sent_before = network.messages_sent
        assert processes[1].send("p0", "ping", None) is False
        assert processes[1].broadcast("ping", None) == 0
        assert processes[1].multicast(("p0",), "ping", None) == 0
        assert network.messages_sent == sent_before

    def test_rejoin_restores_delivery_and_keeps_transport(self):
        simulator, network, processes = _network()
        departed = network.deregister("p1")
        network.register(departed)
        assert departed.network is network
        processes[0].broadcast("ping", None, include_self=False)
        simulator.run()
        assert len(processes[1].received) == 1
        assert network.messages_quarantined == 0
