"""Unit tests for the Update Agreement (R1–R3) and LRC checkers."""

from __future__ import annotations

import pytest

from repro.core.history import HistoryRecorder
from repro.network.update_agreement import (
    check_light_reliable_communication,
    check_update_agreement,
)
from repro.workload.scenarios import figure13_history


class TestUpdateAgreementOnFigure13:
    def test_complete_history_satisfies_r1_r2_r3(self):
        result = check_update_agreement(figure13_history(), processes=("i", "j", "k"))
        assert result.r1_holds and result.r2_holds and result.r3_holds
        assert result.holds and bool(result)

    def test_missing_receiver_breaks_r3(self):
        history = figure13_history(drop_for=["k"])
        result = check_update_agreement(history, processes=("i", "j", "k"))
        assert result.r1_holds
        assert not result.r3_holds
        assert ("b0", "b") in result.missing_receivers
        assert "k" in result.missing_receivers[("b0", "b")]


class TestUpdateAgreementConstructions:
    def test_update_without_send_breaks_r1(self):
        rec = HistoryRecorder()
        rec.update("i", "b0", "blk")  # locally generated, never sent
        result = check_update_agreement(rec.history(), processes=("i", "j"))
        assert not result.r1_holds
        assert any("R1" in v for v in result.violations)

    def test_foreign_update_without_receive_breaks_r2(self):
        rec = HistoryRecorder()
        rec.send("i", "b0", "blk")
        rec.update("i", "b0", "blk")
        rec.receive("i", "b0", "blk")
        rec.receive("j", "b0", "blk")
        rec.update("j", "b0", "blk")
        rec.update("k", "b0", "blk")  # k never received it
        result = check_update_agreement(
            rec.history(),
            processes=("i", "j", "k"),
            block_creators={"blk": "i"},
        )
        assert not result.r2_holds

    def test_receive_after_update_breaks_r2(self):
        rec = HistoryRecorder()
        rec.send("i", "b0", "blk")
        rec.update("i", "b0", "blk")
        rec.receive("i", "b0", "blk")
        rec.update("j", "b0", "blk")    # update first...
        rec.receive("j", "b0", "blk")   # ...receive only afterwards
        result = check_update_agreement(
            rec.history(), processes=("i", "j"), block_creators={"blk": "i"}
        )
        assert not result.r2_holds

    def test_creator_map_distinguishes_local_and_foreign_updates(self):
        rec = HistoryRecorder()
        rec.send("i", "b0", "blk")
        rec.update("i", "b0", "blk")
        for p in ("i", "j"):
            rec.receive(p, "b0", "blk")
        rec.update("j", "b0", "blk")
        result = check_update_agreement(
            rec.history(), processes=("i", "j"), block_creators={"blk": "i"}
        )
        assert result.holds

    def test_empty_history_trivially_holds(self):
        assert check_update_agreement(HistoryRecorder().history()).holds


class TestLRC:
    def _base_history(self):
        rec = HistoryRecorder()
        rec.send("i", "b0", "m")
        rec.receive("i", "b0", "m")
        rec.receive("j", "b0", "m")
        rec.receive("k", "b0", "m")
        return rec

    def test_complete_dissemination_satisfies_lrc(self):
        result = check_light_reliable_communication(
            self._base_history().history(), correct_processes=("i", "j", "k")
        )
        assert result.holds

    def test_sender_not_receiving_breaks_validity(self):
        rec = HistoryRecorder()
        rec.send("i", "b0", "m")
        rec.receive("j", "b0", "m")
        rec.receive("k", "b0", "m")
        result = check_light_reliable_communication(
            rec.history(), correct_processes=("i", "j", "k")
        )
        assert not result.validity_holds

    def test_partial_reception_breaks_agreement(self):
        rec = HistoryRecorder()
        rec.send("i", "b0", "m")
        rec.receive("i", "b0", "m")
        rec.receive("j", "b0", "m")  # k never receives
        result = check_light_reliable_communication(
            rec.history(), correct_processes=("i", "j", "k")
        )
        assert not result.agreement_holds
        assert any("Agreement" in v for v in result.violations)

    def test_byzantine_sender_is_ignored_for_validity(self):
        rec = HistoryRecorder()
        rec.send("byz", "b0", "m")  # byz is not in the correct set
        result = check_light_reliable_communication(
            rec.history(), correct_processes=("i", "j")
        )
        assert result.validity_holds

    def test_message_received_only_by_faulty_processes_is_exempt(self):
        rec = HistoryRecorder()
        rec.send("byz", "b0", "m")
        rec.receive("byz", "b0", "m")
        result = check_light_reliable_communication(
            rec.history(), correct_processes=("i", "j")
        )
        assert result.agreement_holds
