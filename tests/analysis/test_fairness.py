"""Unit tests for the fairness / chain-quality analysis."""

from __future__ import annotations

import pytest

from repro.analysis.fairness import creator_shares, fairness_report
from repro.core.block import GENESIS, GENESIS_ID, Block, Blockchain
from repro.core.blocktree import BlockTree
from repro.workload.merit import MeritDistribution, uniform_merit


def _chain_with_creators(creators):
    blocks = [GENESIS]
    parent = GENESIS_ID
    for index, creator in enumerate(creators):
        block = Block(f"blk{index}", parent, creator=creator)
        blocks.append(block)
        parent = block.block_id
    return Blockchain(tuple(blocks))


class TestCreatorShares:
    def test_shares_sum_to_one(self):
        chain = _chain_with_creators(["a", "a", "b", "c"])
        shares = creator_shares(chain)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["a"] == pytest.approx(0.5)

    def test_genesis_only_chain_has_no_shares(self):
        assert creator_shares(Blockchain.genesis_only()) == {}

    def test_tree_input_counts_all_blocks(self):
        tree = BlockTree()
        tree.append(Block("x", GENESIS_ID, creator="a"))
        tree.append(Block("y", GENESIS_ID, creator="b"))
        shares = creator_shares(tree)
        assert shares == {"a": 0.5, "b": 0.5}

    def test_unknown_creator_is_bucketed(self):
        chain = _chain_with_creators([None])
        assert creator_shares(chain) == {"?": 1.0}


class TestFairnessReport:
    def test_perfectly_fair_run(self):
        chain = _chain_with_creators(["p0", "p1", "p0", "p1"])
        report = fairness_report(chain, uniform_merit(2))
        assert report.worst_ratio == pytest.approx(1.0)
        assert report.is_alpha_fair(0.9)

    def test_starved_process_lowers_worst_ratio(self):
        chain = _chain_with_creators(["p0", "p0", "p0", "p1"])
        report = fairness_report(chain, uniform_merit(2))
        assert report.ratios["p1"] == pytest.approx(0.5)
        assert report.worst_ratio == pytest.approx(0.5)
        assert not report.is_alpha_fair(0.8)
        assert report.is_alpha_fair(0.4)

    def test_zero_merit_processes_are_ignored(self):
        chain = _chain_with_creators(["writer", "writer"])
        merit = MeritDistribution((("writer", 1.0), ("reader", 0.0)))
        report = fairness_report(chain, merit)
        assert "reader" not in report.ratios
        assert report.worst_ratio == pytest.approx(1.0)

    def test_alpha_bounds_validated(self):
        chain = _chain_with_creators(["p0"])
        report = fairness_report(chain, uniform_merit(1))
        with pytest.raises(ValueError):
            report.is_alpha_fair(0.0)
        with pytest.raises(ValueError):
            report.is_alpha_fair(1.5)

    def test_describe_lists_every_process(self):
        chain = _chain_with_creators(["p0", "p1"])
        text = fairness_report(chain, uniform_merit(2)).describe()
        assert "p0" in text and "p1" in text and "worst ratio" in text

    def test_explicit_process_restriction(self):
        chain = _chain_with_creators(["p0", "p1", "p2"])
        report = fairness_report(chain, uniform_merit(3), processes=("p0",))
        assert set(report.ratios) == {"p0"}
