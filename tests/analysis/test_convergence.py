"""Unit tests for convergence metrics."""

from __future__ import annotations

import pytest

from repro.analysis.convergence import (
    common_prefix_depth,
    convergence_summary,
    divergence_by_pair,
)


class TestCommonPrefixDepth:
    def test_identical_chains(self, chain_factory):
        chain = chain_factory("a", "b")
        assert common_prefix_depth([chain, chain]) == 2.0

    def test_divergent_chains_share_only_genesis(self, chain_factory):
        assert common_prefix_depth([chain_factory("a"), chain_factory("x")]) == 0.0

    def test_empty_input(self):
        assert common_prefix_depth([]) == 0.0

    def test_three_way_prefix(self, chain_factory):
        chains = [
            chain_factory("a", "b", "c"),
            chain_factory("a", "b"),
            chain_factory("a", "b", "x"),
        ]
        assert common_prefix_depth(chains) == 2.0


class TestDivergenceByPair:
    def test_pairs_are_sorted_and_complete(self, chain_factory):
        views = {
            "p0": chain_factory("a"),
            "p1": chain_factory("a", "b"),
            "p2": chain_factory("x"),
        }
        pairs = divergence_by_pair(views)
        assert set(pairs) == {("p0", "p1"), ("p0", "p2"), ("p1", "p2")}
        assert pairs[("p0", "p1")] == 1.0
        assert pairs[("p0", "p2")] == 0.0


class TestConvergenceSummary:
    def test_fully_agreeing_views(self, chain_factory):
        views = {"p0": chain_factory("a", "b"), "p1": chain_factory("a", "b")}
        summary = convergence_summary(views)
        assert summary.agreement_ratio == 1.0
        assert summary.common_prefix_score == 2.0
        assert summary.max_divergence == 0.0

    def test_partially_diverging_views(self, chain_factory):
        views = {
            "p0": chain_factory("a", "b", "c"),
            "p1": chain_factory("a", "b"),
            "p2": chain_factory("a", "x"),
        }
        summary = convergence_summary(views)
        assert summary.replicas == 3
        assert summary.common_prefix_score == 1.0
        assert summary.min_score == 2.0
        assert summary.max_score == 3.0
        assert 0.0 < summary.agreement_ratio < 1.0
        assert summary.max_divergence == 2.0

    def test_single_view(self, chain_factory):
        summary = convergence_summary({"p0": chain_factory("a")})
        assert summary.total_pairs == 0
        assert summary.agreement_ratio == 1.0
