"""Unit tests for the text report rendering."""

from __future__ import annotations

from repro.analysis.report import render_classification_table, render_table
from repro.protocols.classification import classify_run
from repro.protocols.hyperledger import run_hyperledger


class TestRenderTable:
    def test_columns_are_aligned(self):
        text = render_table(["name", "value"], [["a", 1], ["longer-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].index("value") == lines[2].index("1")

    def test_title_is_underlined(self):
        text = render_table(["x"], [["1"]], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_rows_longer_than_headers_are_handled(self):
        text = render_table(["a"], [["1", "extra"]])
        assert "extra" in text


class TestClassificationTable:
    def test_renders_classification_results(self):
        run = run_hyperledger(n=4, duration=40.0, seed=3)
        table = render_classification_table({"hyperledger": classify_run(run)})
        assert "hyperledger" in table
        assert "R(BT-ADT_SC" in table
        assert "yes" in table
