"""Unit tests for fork statistics."""

from __future__ import annotations

import pytest

from repro.analysis.forks import fork_statistics, merge_statistics, wasted_block_ratio
from repro.core.selection import LongestChain


class TestForkStatistics:
    def test_linear_tree_has_no_forks(self, linear_tree):
        stats = fork_statistics(linear_tree)
        assert stats.fork_points == 0
        assert stats.max_fork_degree == 1
        assert stats.wasted_blocks == 0
        assert stats.wasted_ratio == 0.0
        assert stats.fork_rate == 0.0

    def test_forked_tree_counts_branches(self, forked_tree):
        stats = fork_statistics(forked_tree, LongestChain())
        assert stats.total_blocks == 6
        assert stats.leaves == 2
        assert stats.fork_points == 1
        assert stats.max_fork_degree == 2
        assert stats.blocks_on_selected_chain == 4  # genesis + a1..a3
        assert stats.wasted_blocks == 2
        assert stats.wasted_ratio == pytest.approx(2 / 5)

    def test_wasted_block_ratio_shortcut(self, forked_tree):
        assert wasted_block_ratio(forked_tree) == pytest.approx(2 / 5)


class TestMergeStatistics:
    def test_empty_input(self):
        merged = merge_statistics({})
        assert merged["replicas"] == 0.0

    def test_aggregation_over_replicas(self, linear_tree, forked_tree):
        merged = merge_statistics(
            {
                "a": fork_statistics(linear_tree),
                "b": fork_statistics(forked_tree),
            }
        )
        assert merged["replicas"] == 2.0
        assert merged["mean_forks"] == pytest.approx(0.5)
        assert merged["max_fork_degree"] == 2.0
        assert merged["mean_blocks"] == pytest.approx((4 + 6) / 2)
