"""Unit tests for the wait-free atomic snapshot object."""

from __future__ import annotations

import pytest

from repro.concurrent.snapshot import AtomicSnapshot


class TestBasics:
    def test_requires_at_least_one_component(self):
        with pytest.raises(ValueError):
            AtomicSnapshot(0)

    def test_initial_scan_returns_initial_values(self):
        snapshot = AtomicSnapshot(3, initial=0)
        assert snapshot.scan() == (0, 0, 0)

    def test_update_then_scan(self):
        snapshot = AtomicSnapshot(3)
        snapshot.update(1, "x")
        assert snapshot.scan() == (None, "x", None)

    def test_out_of_range_update_rejected(self):
        snapshot = AtomicSnapshot(2)
        with pytest.raises(IndexError):
            snapshot.update(5, "x")

    def test_peek_single_component(self):
        snapshot = AtomicSnapshot(2)
        snapshot.update(0, 42)
        assert snapshot.peek(0) == 42

    def test_scan_counts_are_tracked(self):
        snapshot = AtomicSnapshot(2)
        snapshot.scan()
        snapshot.update(0, 1)  # embeds a scan too
        assert snapshot.scan_count >= 2


class TestSemantics:
    def test_scan_reflects_all_preceding_updates(self):
        snapshot = AtomicSnapshot(4)
        for i in range(4):
            snapshot.update(i, i * 10)
        assert snapshot.scan() == (0, 10, 20, 30)

    def test_later_update_overwrites_component(self):
        snapshot = AtomicSnapshot(2)
        snapshot.update(0, "old")
        snapshot.update(0, "new")
        assert snapshot.scan()[0] == "new"

    def test_updates_embed_views_for_helping(self):
        snapshot = AtomicSnapshot(2)
        snapshot.update(0, "a")
        snapshot.update(1, "b")
        # The embedded view mechanism is internal; what matters is that the
        # visible scan is a consistent cut containing both updates.
        assert snapshot.scan() == ("a", "b")

    def test_many_updates_remain_consistent(self):
        snapshot = AtomicSnapshot(3)
        for round_number in range(20):
            snapshot.update(round_number % 3, round_number)
            view = snapshot.scan()
            # Each component holds the latest value written to it so far.
            for idx, value in enumerate(view):
                if value is not None:
                    assert value <= round_number
                    assert value % 3 == idx
