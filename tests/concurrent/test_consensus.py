"""Unit tests for the consensus object and its CAS implementation."""

from __future__ import annotations

import pytest

from repro.concurrent.consensus_object import (
    CASConsensus,
    ConsensusViolation,
    check_consensus_properties,
)


class TestCASConsensus:
    def test_first_proposer_wins(self):
        consensus = CASConsensus()
        assert consensus.propose("a", "va") == "va"
        assert consensus.propose("b", "vb") == "va"
        assert consensus.propose("c", "vc") == "va"

    def test_every_process_decides_the_same_value(self):
        consensus = CASConsensus()
        decisions = [consensus.propose(f"p{i}", f"v{i}") for i in range(5)]
        assert len(set(decisions)) == 1

    def test_double_proposal_rejected(self):
        consensus = CASConsensus()
        consensus.propose("a", 1)
        with pytest.raises(ConsensusViolation):
            consensus.propose("a", 2)

    def test_decided_values_accessor(self):
        consensus = CASConsensus()
        consensus.propose("a", 1)
        consensus.propose("b", 2)
        assert set(consensus.decided_values) == {1}


class TestPropertyChecker:
    def test_clean_instance_passes(self):
        consensus = CASConsensus()
        for i in range(3):
            consensus.propose(f"p{i}", i)
        check_consensus_properties(consensus)  # does not raise

    def test_validity_check_uses_predicate(self):
        consensus = CASConsensus()
        consensus.propose("a", "invalid-value")
        with pytest.raises(ConsensusViolation):
            check_consensus_properties(consensus, validator=lambda v: v == "ok")

    def test_agreement_violation_detected(self):
        consensus = CASConsensus()
        consensus.propose("a", 1)
        consensus.propose("b", 2)
        # Tamper with the recorded decisions to simulate a broken object.
        consensus.decisions["b"] = 2
        with pytest.raises(ConsensusViolation):
            check_consensus_properties(consensus)

    def test_termination_violation_detected(self):
        consensus = CASConsensus()
        consensus.propose("a", 1)
        consensus.proposals["ghost"] = 99  # proposed but never decided
        with pytest.raises(ConsensusViolation):
            check_consensus_properties(consensus)

    def test_correct_processes_restriction(self):
        consensus = CASConsensus()
        consensus.propose("a", 1)
        consensus.proposals["crashed"] = 2  # never decided, but it crashed
        check_consensus_properties(consensus, correct_processes=("a",))

    def test_empty_instance_passes(self):
        check_consensus_properties(CASConsensus())
