"""Unit tests for the Section 4.1 reductions (Theorems 4.1, 4.2, 4.3)."""

from __future__ import annotations

import pytest

from repro.core.block import GENESIS, GENESIS_ID, Block
from repro.concurrent.consensus_object import check_consensus_properties
from repro.concurrent.reductions import (
    CASFromConsumeToken,
    OracleConsensus,
    SnapshotTokenStore,
    snapshot_prodigal_oracle,
)
from repro.concurrent.scheduler import Scheduler
from repro.oracle.tape import DeterministicTape, TapeFamily
from repro.oracle.theta import FrugalOracle, ProdigalOracle


def _k1_oracle(*processes: str, patterns=None) -> FrugalOracle:
    family = TapeFamily()
    for process in processes:
        pattern = [True] if patterns is None else patterns.get(process, [True])
        family.set_tape(process, DeterministicTape(pattern))
    return FrugalOracle(k=1, tapes=family)


class TestCASFromConsumeToken:
    """Figure 10 / Theorem 4.1."""

    def test_requires_k_equal_one(self):
        with pytest.raises(ValueError):
            CASFromConsumeToken(ProdigalOracle(), GENESIS_ID)

    def test_first_cas_succeeds_and_returns_empty(self):
        oracle = _k1_oracle("p")
        cas = CASFromConsumeToken(oracle, GENESIS_ID)
        validated = oracle.get_token(GENESIS, Block("x", GENESIS_ID), process="p")
        assert cas.compare_and_swap(validated, process="p") == ()
        assert [b.block_id for b in cas.read()] == ["x"]

    def test_second_cas_fails_and_returns_stored_value(self):
        oracle = _k1_oracle("p", "q")
        cas = CASFromConsumeToken(oracle, GENESIS_ID)
        first = oracle.get_token(GENESIS, Block("x", GENESIS_ID), process="p")
        second = oracle.get_token(GENESIS, Block("y", GENESIS_ID), process="q")
        assert cas.compare_and_swap(first, process="p") == ()
        returned = cas.compare_and_swap(second, process="q")
        assert [b.block_id for b in returned] == ["x"]

    def test_wrong_parent_rejected(self):
        oracle = _k1_oracle("p")
        cas = CASFromConsumeToken(oracle, "other_parent")
        validated = oracle.get_token(GENESIS, Block("x", GENESIS_ID), process="p")
        with pytest.raises(ValueError):
            cas.compare_and_swap(validated, process="p")


class TestOracleConsensus:
    """Protocol A (Figure 11) / Theorem 4.2."""

    def test_requires_k_equal_one(self):
        with pytest.raises(ValueError):
            OracleConsensus(ProdigalOracle())

    def test_sequential_proposers_agree_on_first_consumed_block(self):
        oracle = _k1_oracle("a", "b", "c")
        consensus = OracleConsensus(oracle)
        decisions = [
            consensus.propose(p, Block(f"blk_{p}", GENESIS_ID, creator=p))
            for p in ("a", "b", "c")
        ]
        block_ids = {d.block_id for d in decisions}
        assert len(block_ids) == 1
        check_consensus_properties(consensus)

    def test_decided_block_is_oracle_validated(self):
        oracle = _k1_oracle("a")
        consensus = OracleConsensus(oracle)
        decision = consensus.propose("a", Block("mine", GENESIS_ID, creator="a"))
        assert decision.token == f"tkn_{GENESIS_ID}"
        check_consensus_properties(
            consensus, validator=lambda v: v.token is not None
        )

    def test_proposer_retries_until_token_granted(self):
        oracle = _k1_oracle("a", patterns={"a": [False, False, False, True]})
        consensus = OracleConsensus(oracle)
        decision = consensus.propose("a", Block("slow", GENESIS_ID, creator="a"))
        assert decision.block_id == "slow"

    def test_double_propose_rejected(self):
        oracle = _k1_oracle("a")
        consensus = OracleConsensus(oracle)
        consensus.propose("a", Block("x", GENESIS_ID, creator="a"))
        with pytest.raises(ValueError):
            consensus.propose("a", Block("y", GENESIS_ID, creator="a"))

    def test_agreement_under_adversarial_interleaving(self):
        # Run the generator bodies under the cooperative scheduler with a
        # random schedule: all processes still decide the same block.
        for seed in range(5):
            oracle = _k1_oracle("a", "b", "c")
            consensus = OracleConsensus(oracle)
            scheduler = Scheduler(seed=seed, strategy="random")
            for p in ("a", "b", "c"):
                scheduler.spawn(
                    p, consensus.propose_steps(p, Block(f"blk_{p}", GENESIS_ID, creator=p))
                )
            result = scheduler.run()
            decided = {result.results[p].block_id for p in ("a", "b", "c")}
            assert len(decided) == 1
            check_consensus_properties(consensus)

    def test_wait_freedom_under_crashes(self):
        # Crashing all but one proposer must not prevent the survivor from
        # deciding (wait-freedom of the construction).
        oracle = _k1_oracle("a", "b", "c")
        consensus = OracleConsensus(oracle)
        scheduler = Scheduler(strategy="round_robin")
        for p in ("a", "b", "c"):
            scheduler.spawn(
                p, consensus.propose_steps(p, Block(f"blk_{p}", GENESIS_ID, creator=p))
            )
        scheduler.crash("a")
        scheduler.crash("b")
        result = scheduler.run()
        assert "c" in result.results
        check_consensus_properties(consensus, correct_processes=("c",))


class TestSnapshotProdigalOracle:
    """Figure 12 / Theorem 4.3."""

    def test_consume_token_accumulates_all_tokens(self):
        store = SnapshotTokenStore(["a", "b", "c"])
        assert set(store.consume_token("a", "tkn_a")) == {"tkn_a"}
        assert set(store.consume_token("b", "tkn_b")) == {"tkn_a", "tkn_b"}
        assert set(store.consume_token("c", "tkn_c")) == {"tkn_a", "tkn_b", "tkn_c"}

    def test_unbounded_consumption_matches_prodigal_semantics(self):
        store = SnapshotTokenStore([f"p{i}" for i in range(10)])
        for i in range(10):
            store.consume_token(f"p{i}", f"t{i}")
        assert len(store.read_tokens()) == 10

    def test_no_agreement_is_forced(self):
        # Unlike the k=1 construction, different consumers can see different
        # "first" tokens — the object never forces a single winner.
        store = SnapshotTokenStore(["a", "b"])
        view_a = store.consume_token("a", "tkn_a")
        view_b = store.consume_token("b", "tkn_b")
        assert view_a != view_b

    def test_unknown_process_rejected(self):
        store = SnapshotTokenStore(["a"])
        with pytest.raises(KeyError):
            store.consume_token("ghost", "t")

    def test_requires_processes(self):
        with pytest.raises(ValueError):
            SnapshotTokenStore([])

    def test_helper_builds_store_for_genesis(self):
        stores = snapshot_prodigal_oracle(["a", "b"])
        assert "b0" in stores
        assert stores["b0"].snapshot.components == 2
