"""Unit tests for the cooperative scheduler."""

from __future__ import annotations

import pytest

from repro.concurrent.scheduler import ProcessCrashed, Scheduler, StepLimitExceeded


def counting_process(result, name, steps):
    """A process that appends its name to a shared list at each step."""
    for _ in range(steps):
        result.append(name)
        yield
    return f"{name}-done"


class TestSpawnAndRun:
    def test_all_processes_run_to_completion(self):
        log: list[str] = []
        scheduler = Scheduler()
        scheduler.spawn("a", counting_process(log, "a", 3))
        scheduler.spawn("b", counting_process(log, "b", 2))
        result = scheduler.run()
        assert result.results == {"a": "a-done", "b": "b-done"}
        assert log.count("a") == 3
        assert log.count("b") == 2

    def test_round_robin_alternates(self):
        log: list[str] = []
        scheduler = Scheduler(strategy="round_robin")
        scheduler.spawn("a", counting_process(log, "a", 2))
        scheduler.spawn("b", counting_process(log, "b", 2))
        scheduler.run()
        assert log[:4] == ["a", "b", "a", "b"]

    def test_duplicate_names_rejected(self):
        scheduler = Scheduler()
        scheduler.spawn("a", counting_process([], "a", 1))
        with pytest.raises(ValueError):
            scheduler.spawn("a", counting_process([], "a", 1))

    def test_non_generator_body_rejected(self):
        scheduler = Scheduler()
        with pytest.raises(TypeError):
            scheduler.spawn("a", lambda: None)  # type: ignore[arg-type]

    def test_step_limit(self):
        def forever():
            while True:
                yield

        scheduler = Scheduler()
        scheduler.spawn("loop", forever())
        with pytest.raises(StepLimitExceeded):
            scheduler.run(max_steps=10)

    def test_schedule_and_step_counts(self):
        scheduler = Scheduler()
        scheduler.spawn("a", counting_process([], "a", 2))
        result = scheduler.run()
        assert result.steps == len(result.schedule) == 3  # 2 yields + final return


class TestStrategies:
    def test_random_strategy_is_seed_deterministic(self):
        def run(seed: int):
            log: list[str] = []
            scheduler = Scheduler(seed=seed, strategy="random")
            scheduler.spawn("a", counting_process(log, "a", 5))
            scheduler.spawn("b", counting_process(log, "b", 5))
            scheduler.run()
            return log

        assert run(3) == run(3)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            Scheduler(strategy="chaotic")

    def test_adversarial_requires_chooser(self):
        with pytest.raises(ValueError):
            Scheduler(strategy="adversarial")

    def test_adversarial_chooser_controls_order(self):
        log: list[str] = []
        chooser = lambda step, runnable: sorted(runnable)[-1]  # noqa: E731
        scheduler = Scheduler(strategy="adversarial", chooser=chooser)
        scheduler.spawn("a", counting_process(log, "a", 2))
        scheduler.spawn("b", counting_process(log, "b", 2))
        scheduler.run()
        # "b" is always preferred while runnable.
        assert log[:2] == ["b", "b"]

    def test_adversarial_chooser_must_pick_runnable(self):
        scheduler = Scheduler(strategy="adversarial", chooser=lambda s, r: "ghost")
        scheduler.spawn("a", counting_process([], "a", 1))
        with pytest.raises(ValueError):
            scheduler.run()

    def test_explicit_interleaving(self):
        log: list[str] = []
        scheduler = Scheduler()
        scheduler.spawn("a", counting_process(log, "a", 2))
        scheduler.spawn("b", counting_process(log, "b", 2))
        result = scheduler.run_interleaving(["b", "b", "a"])
        assert log[:3] == ["b", "b", "a"]
        assert set(result.results) == {"a", "b"}


class TestCrashes:
    def test_crashed_process_never_finishes_but_run_completes(self):
        log: list[str] = []
        scheduler = Scheduler()
        scheduler.spawn("victim", counting_process(log, "victim", 100))
        scheduler.spawn("survivor", counting_process(log, "survivor", 3))
        scheduler.crash("victim")
        result = scheduler.run()
        assert "survivor" in result.results
        assert "victim" not in result.results
        assert result.crashed == ("victim",)
        assert "victim" not in log

    def test_stepping_a_crashed_process_raises(self):
        scheduler = Scheduler()
        scheduler.spawn("a", counting_process([], "a", 1))
        scheduler.crash("a")
        with pytest.raises(ProcessCrashed):
            scheduler.step("a")
