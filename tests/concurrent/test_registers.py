"""Unit tests for atomic registers and the Compare&Swap register."""

from __future__ import annotations

from repro.concurrent.registers import AtomicRegister, CASRegister


class TestAtomicRegister:
    def test_initial_value_and_read(self):
        assert AtomicRegister().read() is None
        assert AtomicRegister(value=7).read() == 7

    def test_write_then_read(self):
        register = AtomicRegister()
        register.write("hello", process="p")
        assert register.read() == "hello"

    def test_write_history_order(self):
        register = AtomicRegister()
        register.write(1, process="a")
        register.write(2, process="b")
        assert register.write_history == (("a", 1), ("b", 2))


class TestCASRegister:
    def test_successful_cas_updates_and_returns_previous(self):
        register = CASRegister(value=None)
        previous = register.compare_and_swap(None, "winner", process="p")
        assert previous is None
        assert register.read() == "winner"

    def test_failed_cas_keeps_value_and_returns_previous(self):
        register = CASRegister(value="taken")
        previous = register.compare_and_swap(None, "late", process="q")
        assert previous == "taken"
        assert register.read() == "taken"

    def test_only_first_of_two_competing_cas_succeeds(self):
        register = CASRegister(value=None)
        register.compare_and_swap(None, "first", process="a")
        register.compare_and_swap(None, "second", process="b")
        assert register.read() == "first"
        assert len(register.successful_operations) == 1
        assert register.successful_operations[0][0] == "a"

    def test_operation_history_records_everything(self):
        register = CASRegister(value=None)
        register.compare_and_swap(None, 1, process="a")
        register.compare_and_swap(None, 2, process="b")
        register.compare_and_swap(1, 3, process="c")
        assert len(register.operation_history) == 3
        assert register.read() == 3

    def test_cas_with_matching_nonempty_old_value(self):
        register = CASRegister(value=10)
        previous = register.compare_and_swap(10, 20)
        assert previous == 10
        assert register.read() == 20
