"""Property-based tests on the token oracles (k-fork coherence, inclusion)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.block import GENESIS, GENESIS_ID, Block
from repro.oracle.fork_coherence import check_fork_coherence_from_oracle
from repro.oracle.tape import DeterministicTape, TapeFamily
from repro.oracle.theta import FrugalOracle, ProdigalOracle


def _oracle(k, granting=True):
    family = TapeFamily()
    family.set_tape("p", DeterministicTape([granting]))
    if k is None:
        return ProdigalOracle(tapes=family)
    return FrugalOracle(k=k, tapes=family)


@st.composite
def consume_workloads(draw):
    """A random sequence of (parent index, block name) consume attempts."""
    n_parents = draw(st.integers(min_value=1, max_value=4))
    n_attempts = draw(st.integers(min_value=0, max_value=30))
    attempts = [
        (draw(st.integers(min_value=0, max_value=n_parents - 1)), f"blk{i}")
        for i in range(n_attempts)
    ]
    return n_parents, attempts


class TestForkCoherenceProperty:
    """Theorem 3.2: Θ_F(k) never consumes more than k tokens per parent."""

    @given(k=st.integers(min_value=1, max_value=5), workload=consume_workloads())
    @settings(max_examples=60, deadline=None)
    def test_frugal_oracle_respects_k(self, k, workload):
        n_parents, attempts = workload
        oracle = _oracle(k)
        parents = [GENESIS_ID] + [f"parent{i}" for i in range(1, n_parents)]
        for parent_index, name in attempts:
            parent = parents[parent_index]
            validated = oracle.get_token(parent, Block(name, GENESIS_ID, creator="p"), process="p")
            assert validated is not None
            oracle.consume_token(validated, process="p")
        result = check_fork_coherence_from_oracle(oracle)
        assert result.holds
        assert result.max_forks <= k

    @given(workload=consume_workloads())
    @settings(max_examples=40, deadline=None)
    def test_prodigal_consumes_everything(self, workload):
        n_parents, attempts = workload
        oracle = _oracle(None)
        parents = [GENESIS_ID] + [f"parent{i}" for i in range(1, n_parents)]
        for parent_index, name in attempts:
            parent = parents[parent_index]
            validated = oracle.get_token(parent, Block(name, GENESIS_ID, creator="p"), process="p")
            oracle.consume_token(validated, process="p")
        assert sum(oracle.consumed_counts().values()) == len(attempts)

    @given(
        k1=st.integers(min_value=1, max_value=4),
        k2=st.integers(min_value=1, max_value=4),
        workload=consume_workloads(),
    )
    @settings(max_examples=60, deadline=None)
    def test_consumed_sets_nest_with_k(self, k1, k2, workload):
        """Theorems 3.3/3.4: the same workload consumes nested block sets."""
        if k1 > k2:
            k1, k2 = k2, k1
        n_parents, attempts = workload
        parents = [GENESIS_ID] + [f"parent{i}" for i in range(1, n_parents)]

        def run(k):
            oracle = _oracle(k)
            for parent_index, name in attempts:
                parent = parents[parent_index]
                validated = oracle.get_token(
                    parent, Block(name, GENESIS_ID, creator="p"), process="p"
                )
                oracle.consume_token(validated, process="p")
            return {
                parent: {b.block_id for b in oracle.consumed_for(parent)}
                for parent in parents
            }

        smaller, larger, prodigal = run(k1), run(k2), run(None)
        for parent in parents:
            assert smaller[parent] <= larger[parent] <= prodigal[parent]
