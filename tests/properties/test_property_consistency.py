"""Property-based tests on the consistency criteria and their relationships."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.consistency import (
    check_eventual_consistency,
    check_strong_consistency,
)
from repro.workload.scenarios import generate_chain_history, generate_forked_history


class TestTheorem31Property:
    """Theorem 3.1: every SC history is an EC history (H_SC ⊂ H_EC)."""

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n_processes=st.integers(min_value=1, max_value=4),
        chain_length=st.integers(min_value=1, max_value=12),
        reads=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_sc_histories_are_ec(self, seed, n_processes, chain_length, reads):
        history = generate_chain_history(
            n_processes=n_processes,
            chain_length=chain_length,
            reads_per_process=reads,
            seed=seed,
        )
        assert check_strong_consistency(history).holds
        assert check_eventual_consistency(history).holds

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        branch_length=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_resolved_forks_are_ec_but_not_sc(self, seed, branch_length):
        history = generate_forked_history(
            branch_length=branch_length, resolve=True, seed=seed
        )
        assert not check_strong_consistency(history).holds
        assert check_eventual_consistency(history).holds

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        branch_length=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_unresolved_forks_satisfy_neither(self, seed, branch_length):
        history = generate_forked_history(
            branch_length=branch_length, resolve=False, seed=seed
        )
        assert not check_strong_consistency(history).holds
        assert not check_eventual_consistency(history).holds

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_ec_never_holds_when_sc_holds_and_ec_fails(self, seed):
        # Contrapositive sanity check of the inclusion on random histories:
        # there must be no history where SC holds but EC fails.
        for resolve in (True, False):
            history = generate_forked_history(branch_length=3, resolve=resolve, seed=seed)
            if check_strong_consistency(history).holds:
                assert check_eventual_consistency(history).holds
        chain_history = generate_chain_history(seed=seed)
        if check_strong_consistency(chain_history).holds:
            assert check_eventual_consistency(chain_history).holds
