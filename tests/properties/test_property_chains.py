"""Property-based tests on chains, trees, scores and selection functions."""

from __future__ import annotations

from typing import List

from hypothesis import given, settings, strategies as st

from repro.core.block import GENESIS, GENESIS_ID, Block, Blockchain
from repro.core.blocktree import BlockTree
from repro.core.score import LengthScore, WeightScore, mcps
from repro.core.selection import GHOSTSelection, HeaviestChain, LongestChain


# --- strategies -------------------------------------------------------------


@st.composite
def chains(draw, max_length: int = 12) -> Blockchain:
    """A random chain rooted at genesis, with random per-block weights."""
    length = draw(st.integers(min_value=0, max_value=max_length))
    label = draw(st.text(alphabet="xyz", min_size=1, max_size=3))
    blocks = [GENESIS]
    parent = GENESIS_ID
    for i in range(length):
        weight = draw(st.floats(min_value=0.1, max_value=5.0, allow_nan=False))
        block = Block(f"{label}_{i}", parent, weight=weight)
        blocks.append(block)
        parent = block.block_id
    return Blockchain(tuple(blocks))


@st.composite
def block_trees(draw, max_blocks: int = 20) -> BlockTree:
    """A random tree built by attaching blocks under random existing parents."""
    n = draw(st.integers(min_value=0, max_value=max_blocks))
    tree = BlockTree()
    ids = [GENESIS_ID]
    for i in range(n):
        parent = ids[draw(st.integers(min_value=0, max_value=len(ids) - 1))]
        weight = draw(st.floats(min_value=0.1, max_value=3.0, allow_nan=False))
        block = Block(f"t{i}", parent, weight=weight)
        tree.append(block)
        ids.append(block.block_id)
    return tree


# --- chain properties ----------------------------------------------------------


class TestChainProperties:
    @given(chains())
    def test_prefix_relation_is_reflexive(self, chain):
        assert chain.is_prefix_of(chain)

    @given(chains())
    def test_every_prefix_is_a_prefix(self, chain):
        for length in range(chain.length + 1):
            assert chain.prefix(length).is_prefix_of(chain)

    @given(chains(), chains())
    def test_common_prefix_is_symmetric_and_bounded(self, a, b):
        cp_ab = a.common_prefix(b)
        cp_ba = b.common_prefix(a)
        assert cp_ab.ids == cp_ba.ids
        assert cp_ab.is_prefix_of(a) and cp_ab.is_prefix_of(b)
        assert cp_ab.length <= min(a.length, b.length)

    @given(chains(), chains())
    def test_mcps_matches_common_prefix_length(self, a, b):
        assert mcps(a, b) == float(a.common_prefix(b).length)

    @given(chains())
    def test_length_score_is_strictly_monotonic(self, chain):
        score = LengthScore()
        for length in range(1, chain.length + 1):
            assert score(chain.prefix(length)) > score(chain.prefix(length - 1))

    @given(chains())
    def test_weight_score_is_monotonic_for_positive_weights(self, chain):
        score = WeightScore()
        for length in range(1, chain.length + 1):
            assert score(chain.prefix(length)) > score(chain.prefix(length - 1))

    @given(chains(), chains())
    def test_prefix_relation_implies_mcps_equals_smaller_score(self, a, b):
        if a.is_prefix_of(b):
            assert mcps(a, b) == LengthScore()(a)


# --- tree / selection properties --------------------------------------------------


class TestTreeProperties:
    @given(block_trees())
    def test_selected_chain_is_a_path_of_the_tree(self, tree):
        for selection in (LongestChain(), HeaviestChain(), GHOSTSelection()):
            chain = selection(tree)
            assert chain.genesis.block_id == tree.genesis.block_id
            for parent, child in zip(chain.blocks, chain.blocks[1:]):
                assert child.parent_id == parent.block_id
                assert child.block_id in tree

    @given(block_trees())
    def test_longest_chain_reaches_tree_height(self, tree):
        assert LongestChain()(tree).length == tree.height

    @given(block_trees())
    def test_ghost_tip_is_a_leaf(self, tree):
        tip = GHOSTSelection()(tree).tip.block_id
        assert tip in tree.leaves()

    @given(block_trees())
    def test_heights_are_consistent_with_parents(self, tree):
        for block in tree:
            if block.is_genesis:
                assert tree.height_of(block.block_id) == 0
            else:
                assert (
                    tree.height_of(block.block_id)
                    == tree.height_of(block.parent_id) + 1
                )

    @given(block_trees())
    def test_leaf_count_plus_internal_matches_total(self, tree):
        leaves = set(tree.leaves())
        internal = {b.block_id for b in tree} - leaves
        assert len(leaves) + len(internal) == len(tree)

    @given(block_trees())
    def test_subtree_weight_of_root_is_total_weight(self, tree):
        total = sum(b.weight for b in tree)
        assert abs(tree.subtree_weight(tree.genesis.block_id) - total) < 1e-9

    @given(block_trees())
    def test_selection_is_deterministic(self, tree):
        for selection in (LongestChain(), HeaviestChain(), GHOSTSelection()):
            assert selection(tree).ids == selection(tree).ids
