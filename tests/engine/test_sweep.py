"""Unit tests for grid expansion and the parallel sweep runner."""

from __future__ import annotations

import pytest

from repro.engine import (
    ExperimentSpec,
    FaultSpec,
    SweepRunner,
    derive_seed,
    expand_grid,
    results_payload,
)
from repro.engine.sweep import _apply_override


class TestExpandGrid:
    def test_empty_axes_yield_the_base_spec(self):
        base = ExperimentSpec(protocol="bitcoin")
        assert expand_grid(base, {}) == [base]

    def test_cartesian_product_in_nested_loop_order(self):
        base = ExperimentSpec(protocol="bitcoin", seed=0)
        specs = expand_grid(base, {"seed": [0, 1], "channel.delta": [1.0, 2.0]})
        assert len(specs) == 4
        assert [(s.seed, s.channel.params["delta"]) for s in specs] == [
            (0, 1.0), (0, 2.0), (1, 1.0), (1, 2.0),
        ]

    def test_cells_carry_descriptive_labels(self):
        base = ExperimentSpec(protocol="bitcoin")
        specs = expand_grid(base, {"seed": [3]})
        assert specs[0].label == "bitcoin seed=3"

    def test_channel_axis_creates_a_default_channel(self):
        base = ExperimentSpec(protocol="bitcoin")  # no channel configured
        (spec,) = expand_grid(base, {"channel.drop_probability": [0.3]})
        assert spec.channel is not None and spec.channel.drop_probability == 0.3

    def test_params_axis(self):
        base = ExperimentSpec(protocol="bitcoin")
        (spec,) = expand_grid(base, {"params.token_rate": [0.4]})
        assert spec.params["token_rate"] == 0.4

    def test_unknown_axis_rejected(self):
        base = ExperimentSpec(protocol="bitcoin")
        with pytest.raises(KeyError):
            expand_grid(base, {"warp_factor": [9]})
        with pytest.raises(KeyError):
            expand_grid(base, {"workload.warp": [1]})

    def test_derive_seeds_are_distinct_and_stable(self):
        base = ExperimentSpec(protocol="bitcoin", seed=42)
        specs = expand_grid(base, {"channel.delta": [1.0, 2.0, 4.0]}, derive_seeds=True)
        seeds = [s.seed for s in specs]
        assert len(set(seeds)) == 3
        again = expand_grid(base, {"channel.delta": [1.0, 2.0, 4.0]}, derive_seeds=True)
        assert [s.seed for s in again] == seeds
        assert seeds[0] == derive_seed(42, 0)

    def test_explicit_seed_axis_wins_over_derivation(self):
        base = ExperimentSpec(protocol="bitcoin", seed=42)
        specs = expand_grid(base, {"seed": [1, 2]}, derive_seeds=True)
        assert [s.seed for s in specs] == [1, 2]


class TestApplyOverride:
    def test_nested_too_deep_rejected(self):
        with pytest.raises(KeyError, match="nests too deep"):
            _apply_override(ExperimentSpec(protocol="x").to_dict(), "channel.params.delta", 1.0)

    def test_fault_axis_requires_a_fault(self):
        with pytest.raises(KeyError, match="without a fault"):
            _apply_override(ExperimentSpec(protocol="x").to_dict(), "fault.kind", "crash")


class TestFaultAxes:
    def test_top_level_fault_axis_accepts_dicts_and_kind_shorthand(self):
        base = ExperimentSpec(protocol="bitcoin")
        specs = expand_grid(
            base,
            {
                "fault": [
                    "crash",
                    {"kind": "eclipse", "params": {"victim": "p0", "until": 30.0}},
                ]
            },
        )
        assert [s.fault.kind for s in specs] == ["crash", "eclipse"]
        assert specs[1].fault.params == {"victim": "p0", "until": 30.0}

    def test_nested_param_axis_lands_in_fault_params(self):
        base = ExperimentSpec(
            protocol="bitcoin",
            fault=FaultSpec(kind="eclipse", params={"victim": "p1", "until": 20.0}),
        )
        specs = expand_grid(base, {"fault.until": [20.0, 40.0]})
        assert [s.fault.params["until"] for s in specs] == [20.0, 40.0]
        assert all(s.fault.params["victim"] == "p1" for s in specs)

    def test_legacy_fault_fields_stay_addressable(self):
        base = ExperimentSpec(
            protocol="bitcoin", fault=FaultSpec(kind="crash", crash_at={"p0": 10.0})
        )
        (spec,) = expand_grid(base, {"fault.crash_at": [{"p1": 25.0}]})
        assert spec.fault.crash_at == {"p1": 25.0}
        (seeded,) = expand_grid(base, {"fault.seed": [9]})
        assert seeded.fault.seed == 9


class TestSweepRunner:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)

    def test_serial_run_keeps_live_objects_and_order(self):
        specs = [
            ExperimentSpec(protocol="hyperledger", replicas=3, duration=30.0, seed=s)
            for s in (0, 1)
        ]
        records = SweepRunner(jobs=1).run(specs)
        assert [r.spec.seed for r in records] == [0, 1]
        assert all(r.run is not None for r in records)

    def test_parallel_matches_serial_up_to_timings(self):
        specs = [
            ExperimentSpec(protocol="hyperledger", replicas=3, duration=30.0, seed=s)
            for s in (0, 1)
        ]
        serial = SweepRunner(jobs=1).run(specs)
        parallel = SweepRunner(jobs=2).run(specs)

        def stable(record):
            data = record.to_dict()
            data.pop("timings")
            return data

        assert [stable(r) for r in serial] == [stable(r) for r in parallel]

    def test_results_payload_shape(self):
        records = SweepRunner(jobs=1).run(
            [ExperimentSpec(protocol="hyperledger", replicas=3, duration=30.0, seed=0)]
        )
        payload = results_payload(records)
        assert payload["schema"] == "repro.sweep/2"
        assert payload["failures"] == 0
        assert "shard" not in payload
        assert len(payload["cells"]) == 1
        assert payload["cells"][0]["spec"]["protocol"] == "hyperledger"

    def test_pool_construction_fallback_warns_and_completes(self, monkeypatch):
        import multiprocessing

        class BrokenContext:
            def Pipe(self, duplex=False):
                raise OSError("no /dev/shm in this sandbox")

        monkeypatch.setattr(
            multiprocessing, "get_context", lambda method=None: BrokenContext()
        )
        specs = [
            ExperimentSpec(protocol="hyperledger", replicas=3, duration=30.0, seed=s)
            for s in (0, 1)
        ]
        with pytest.warns(RuntimeWarning, match="worker process construction failed"):
            records = SweepRunner(jobs=2).run(specs)
        assert [r.spec.seed for r in records] == [0, 1]

    def test_partial_failure_keeps_computed_cells_cached(self, tmp_path):
        from repro.engine import ResultCache

        good = [
            ExperimentSpec(protocol="hyperledger", replicas=3, duration=30.0, seed=s)
            for s in (0, 1)
        ]
        bad = ExperimentSpec(protocol="hyperledger", params={"bogus": 1})
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(ValueError, match="does not accept parameter"):
            SweepRunner(jobs=1, cache=cache).run(good + [bad])
        # Regression (per-cell puts): both good cells were computed before
        # the bad one surfaced its error, and must already be on disk.
        slots, missing = cache.partition(good)
        assert missing == []
        rerun = SweepRunner(jobs=1, cache=cache)
        records = rerun.run(good)
        assert rerun.last_cache_hits == 2
        assert [r.spec.seed for r in records] == [0, 1]
