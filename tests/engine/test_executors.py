"""Unit tests for the pluggable executor backends and the resilience loop."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.errors import UnknownVocabularyError
from repro.engine import (
    CellFailure,
    CellTask,
    ExperimentSpec,
    FlakyExecutor,
    PoolExecutor,
    ResultCache,
    SerialExecutor,
    ShardExecutor,
    SweepAbortedError,
    SweepJournal,
    SweepRunner,
    available_executors,
    get_executor,
    make_executor,
    register_executor,
    retry_delay,
)
from repro.engine.executors import EXECUTOR_REGISTRY


def small_specs(count, duration=20.0, seed=0):
    return [
        ExperimentSpec(protocol="hyperledger", replicas=3, duration=duration, seed=seed + i)
        for i in range(count)
    ]


def stable(record):
    return record.stable_dict()


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(available_executors()) >= {"serial", "pool", "shard", "flaky"}

    def test_get_executor_resolves(self):
        assert get_executor("serial") is SerialExecutor
        assert get_executor("pool") is PoolExecutor

    def test_unknown_name_raises_uniform_vocabulary_error(self):
        with pytest.raises(UnknownVocabularyError) as excinfo:
            get_executor("warp")
        message = str(excinfo.value)
        assert "unknown executor 'warp'" in message
        for name in available_executors():
            assert repr(name) in message
        # The uniform error is catchable as both KeyError and ValueError.
        assert isinstance(excinfo.value, KeyError)
        assert isinstance(excinfo.value, ValueError)

    def test_make_executor_unknown_name(self):
        with pytest.raises(UnknownVocabularyError, match="unknown executor"):
            make_executor("warp")

    def test_runner_accepts_backend_names(self):
        runner = SweepRunner(executor="serial")
        assert isinstance(runner.executor, SerialExecutor)
        with pytest.raises(UnknownVocabularyError):
            SweepRunner(executor="warp")

    def test_collision_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_executor("serial")(SerialExecutor)
        assert EXECUTOR_REGISTRY["serial"] is SerialExecutor

    def test_third_party_registration_constructs_nullary(self):
        @register_executor("test-noop")
        class NoopExecutor(SerialExecutor):
            pass

        try:
            assert isinstance(make_executor("test-noop"), NoopExecutor)
        finally:
            del EXECUTOR_REGISTRY["test-noop"]


class TestSerialExecutor:
    def test_successful_batch_keeps_live_results(self):
        tasks = [CellTask.for_spec(i, s) for i, s in enumerate(small_specs(2))]
        outcomes = SerialExecutor().run_batch(tasks)
        assert [o.status for o in outcomes] == ["ok", "ok"]
        assert all(o.result.run is not None for o in outcomes)

    def test_error_outcome_carries_live_exception(self):
        spec = ExperimentSpec(protocol="hyperledger", params={"bogus": 1})
        (outcome,) = SerialExecutor().run_batch([CellTask.for_spec(0, spec)])
        assert outcome.status == "error"
        assert outcome.error_type == "ValueError"
        assert isinstance(outcome.exception, ValueError)

    def test_injected_hang_and_kill_are_synthetic(self):
        tasks = [
            CellTask.for_spec(i, s) for i, s in enumerate(small_specs(2))
        ]
        tasks[0].inject = "hang"
        tasks[1].inject = "kill"
        outcomes = SerialExecutor().run_batch(tasks, timeout=0.5)
        assert [o.status for o in outcomes] == ["timeout", "died"]

    def test_stop_after_failures_truncates_the_batch(self):
        bad = ExperimentSpec(protocol="hyperledger", params={"bogus": 1})
        tasks = [CellTask.for_spec(i, bad) for i in range(4)]
        outcomes = SerialExecutor().run_batch(tasks, stop_after_failures=1)
        assert len(outcomes) == 2  # stopped once the abort became certain


class TestPoolExecutor:
    def test_per_cell_failure_does_not_poison_the_batch(self):
        good = small_specs(2)
        bad = ExperimentSpec(protocol="hyperledger", params={"bogus": 1})
        tasks = [
            CellTask.for_spec(0, good[0]),
            CellTask.for_spec(1, bad),
            CellTask.for_spec(2, good[1]),
        ]
        outcomes = PoolExecutor(jobs=2).run_batch(tasks)
        assert [o.status for o in outcomes] == ["ok", "error", "ok"]
        assert outcomes[1].error_type == "ValueError"
        assert outcomes[0].result is not None

    def test_matches_serial_up_to_timings(self):
        tasks = [CellTask.for_spec(i, s) for i, s in enumerate(small_specs(2))]
        pooled = PoolExecutor(jobs=2).run_batch(tasks)
        serial = SerialExecutor().run_batch(tasks)
        assert [stable(o.result) for o in pooled] == [stable(o.result) for o in serial]

    def test_hung_worker_is_killed_on_timeout(self):
        (task,) = [CellTask.for_spec(0, small_specs(1)[0])]
        task.inject = "hang"
        (outcome,) = PoolExecutor(jobs=1).run_batch([task], timeout=0.5)
        assert outcome.status == "timeout"
        assert "terminated" in outcome.error_message

    def test_killed_worker_reports_death(self):
        (task,) = [CellTask.for_spec(0, small_specs(1)[0])]
        task.inject = "kill"
        (outcome,) = PoolExecutor(jobs=1).run_batch([task])
        assert outcome.status == "died"
        assert outcome.error_type == "WorkerDied"

    def test_killed_workers_do_not_leak_fds(self):
        """Regression: a long flaky sweep kills many workers on timeout;
        each kill must release both pipe ends and the Process sentinel,
        or the driver runs out of file descriptors mid-sweep."""
        if not os.path.isdir("/proc/self/fd"):
            pytest.skip("needs /proc to observe the fd table")

        def hung_batch(count):
            tasks = [
                CellTask.for_spec(i, s)
                for i, s in enumerate(small_specs(count, seed=100))
            ]
            for task in tasks:
                task.inject = "hang"
            return tasks

        pool = PoolExecutor(jobs=8)
        # Warm-up: multiprocessing opens long-lived bookkeeping fds
        # (resource tracker, semaphores) on first use — not leaks.
        pool.run_batch(hung_batch(2), timeout=0.05)
        before = len(os.listdir("/proc/self/fd"))
        outcomes = pool.run_batch(hung_batch(50), timeout=0.05)
        assert [o.status for o in outcomes] == ["timeout"] * 50
        after = len(os.listdir("/proc/self/fd"))
        assert after <= before, f"fd table grew {before} -> {after} across 50 kills"

    def test_construction_failure_degrades_serially_with_a_warning(self, monkeypatch):
        import multiprocessing

        class BrokenContext:
            def Pipe(self, duplex=False):
                raise OSError("no pipes in this sandbox")

        monkeypatch.setattr(
            multiprocessing, "get_context", lambda method=None: BrokenContext()
        )
        tasks = [CellTask.for_spec(i, s) for i, s in enumerate(small_specs(2))]
        with pytest.warns(RuntimeWarning, match="worker process construction failed"):
            outcomes = PoolExecutor(jobs=2).run_batch(tasks)
        assert [o.status for o in outcomes] == ["ok", "ok"]


class TestShardExecutor:
    def test_shard_of_partitions_deterministically(self):
        shards = [ShardExecutor(i, 4).shard_of(10) for i in range(4)]
        flat = sorted(index for shard in shards for index in shard)
        assert flat == list(range(10))
        assert list(shards[1]) == [1, 5, 9]

    def test_invalid_shard_parameters_rejected(self):
        with pytest.raises(ValueError, match="shard_index"):
            ShardExecutor(4, 4)
        with pytest.raises(ValueError, match="shard_count"):
            ShardExecutor(0, 0)
        with pytest.raises(ValueError, match="shard_index and shard_count"):
            make_executor("shard")

    def test_shard_union_is_byte_identical_to_serial(self, tmp_path):
        specs = small_specs(5)
        serial = SweepRunner(jobs=1).run(specs)
        cache_dir = tmp_path / "cache"
        union = {}
        for index in range(4):
            runner = SweepRunner(
                cache=ResultCache(cache_dir),
                executor=make_executor("shard", shard_index=index, shard_count=4),
            )
            records = runner.run(specs)
            for grid_index, record in zip(runner.last_indices, records):
                union[grid_index] = record
        assert sorted(union) == list(range(5))
        assert [union[i].stable_json() for i in range(5)] == [
            r.stable_json() for r in serial
        ]
        merge = SweepRunner(cache=ResultCache(cache_dir))
        merged = merge.run(specs)
        assert merge.last_cache_hits == 5 and merge.last_executed == 0
        assert [stable(r) for r in merged] == [stable(r) for r in serial]


class TestFlakyExecutor:
    def test_plan_injections_are_scripted(self):
        flaky = FlakyExecutor(SerialExecutor(), plan={0: {1: "exception"}})
        tasks = [CellTask.for_spec(i, s) for i, s in enumerate(small_specs(2))]
        outcomes = flaky.run_batch(tasks)
        assert [o.status for o in outcomes] == ["error", "ok"]
        assert outcomes[0].error_type == "InjectedFault"
        assert flaky.injections == [(0, 1, "exception")]

    def test_rates_are_deterministic_per_digest_and_attempt(self):
        specs = small_specs(6)
        tasks = [CellTask.for_spec(i, s) for i, s in enumerate(specs)]

        def injected(seed):
            flaky = FlakyExecutor(SerialExecutor(), rates={"exception": 0.5}, seed=seed)
            flaky.run_batch(tasks)
            return flaky.injections

        assert injected(3) == injected(3)
        assert injected(3) != injected(4)

    def test_unknown_injection_kind_rejected(self):
        with pytest.raises(UnknownVocabularyError, match="injection kind"):
            FlakyExecutor(SerialExecutor(), rates={"gamma-ray": 1.0})
        with pytest.raises(UnknownVocabularyError, match="injection kind"):
            FlakyExecutor(SerialExecutor(), plan={0: {1: "gamma-ray"}})


class TestRetryDelay:
    def test_deterministic_and_exponential(self):
        first = retry_delay(0.1, 2, "digest-a")
        assert first == retry_delay(0.1, 2, "digest-a")
        assert retry_delay(0.1, 2, "digest-a") != retry_delay(0.1, 2, "digest-b")
        assert retry_delay(0.1, 4, "digest-a") > 2 * retry_delay(0.1, 2, "digest-a")
        assert 0.1 <= first < 0.15

    def test_zero_backoff_disables_sleeping(self):
        assert retry_delay(0.0, 5, "digest-a") == 0.0


class TestResilienceLoop:
    def test_chaos_sweep_degrades_and_recovers(self, tmp_path):
        specs = small_specs(4)
        flaky = FlakyExecutor(
            SerialExecutor(),
            plan={
                0: {1: "exception"},
                1: {1: "hang"},
                2: {1: "kill"},
                3: {1: "exception", 2: "exception", 3: "exception"},
            },
        )
        runner = SweepRunner(
            executor=flaky,
            retries=2,
            timeout=1.0,
            backoff=0.0,
            max_failures=None,
            journal=tmp_path / "journal.jsonl",
            cache=ResultCache(tmp_path / "cache"),
        )
        records = runner.run(specs)
        assert len(records) == 4
        assert [isinstance(r, CellFailure) for r in records] == [
            False, False, False, True,
        ]
        clean = SweepRunner(jobs=1).run(specs)
        assert [stable(r) for r in records[:3]] == [stable(r) for r in clean[:3]]
        failure = records[3]
        assert failure.attempts == 3
        assert failure.error["type"] == "InjectedFault"
        assert runner.last_failures == 1

    def test_retried_cells_are_byte_identical_to_clean_runs(self):
        specs = small_specs(2)
        flaky = FlakyExecutor(SerialExecutor(), plan={0: {1: "exception"}})
        retried = SweepRunner(
            executor=flaky, retries=1, backoff=0.0, max_failures=None
        ).run(specs)
        clean = SweepRunner(jobs=1).run(specs)
        assert [r.stable_json() for r in retried] == [r.stable_json() for r in clean]

    def test_default_zero_failure_budget_reraises_the_original_error(self):
        bad = ExperimentSpec(protocol="hyperledger", params={"bogus": 1})
        with pytest.raises(ValueError, match="does not accept parameter"):
            SweepRunner(jobs=1).run([bad])

    def test_max_failures_exceeded_raises_sweep_aborted(self):
        specs = small_specs(3)
        flaky = FlakyExecutor(
            SerialExecutor(), plan={i: {1: "hang"} for i in range(3)}
        )
        with pytest.raises(SweepAbortedError, match="exceeded --max-failures 1"):
            SweepRunner(executor=flaky, timeout=0.1, max_failures=1).run(specs)

    def test_successes_survive_an_abort_in_the_cache(self, tmp_path):
        specs = small_specs(2) + [
            ExperimentSpec(protocol="hyperledger", params={"bogus": 1})
        ]
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(ValueError):
            SweepRunner(jobs=1, cache=cache).run(specs)
        # Regression: the two good cells were computed before the failure
        # surfaced; with per-cell puts they are already cached.
        slots, missing = cache.partition(specs[:2])
        assert missing == [] and all(r is not None for r in slots)

    def test_payload_carries_structured_failures(self):
        from repro.engine import results_payload

        specs = small_specs(2)
        flaky = FlakyExecutor(
            SerialExecutor(), plan={1: {1: "exception", 2: "exception"}}
        )
        records = SweepRunner(
            executor=flaky, retries=1, backoff=0.0, max_failures=None
        ).run(specs)
        payload = results_payload(records, shard=(0, 1))
        assert payload["schema"] == "repro.sweep/2"
        assert payload["failures"] == 1
        assert payload["shard"] == {"index": 0, "count": 1}
        failed = payload["cells"][1]
        assert failed["cell_failure"] is True
        assert failed["attempts"] == 2
        assert failed["error"]["type"] == "InjectedFault"
        restored = CellFailure.from_dict(failed)
        assert restored.spec == specs[1]
        # The whole payload round-trips through strict JSON.
        json.loads(json.dumps(payload))


class TestJournalAndResume:
    def test_journal_records_every_terminal_cell(self, tmp_path):
        specs = small_specs(2)
        journal_path = tmp_path / "journal.jsonl"
        flaky = FlakyExecutor(SerialExecutor(), plan={1: {1: "exception"}})
        SweepRunner(
            executor=flaky,
            backoff=0.0,
            max_failures=None,
            journal=journal_path,
            cache=ResultCache(tmp_path / "cache"),
        ).run(specs)
        entries = [json.loads(line) for line in journal_path.read_text().splitlines()]
        assert [e["status"] for e in entries] == ["ok", "failed"]
        assert all(e["schema"] == "repro.sweep-journal/2" for e in entries)
        assert entries[1]["attempts"] == 1
        assert entries[1]["error"]["type"] == "InjectedFault"

    def test_resume_executes_only_unfinished_cells(self, tmp_path, monkeypatch):
        specs = small_specs(3)
        journal = SweepJournal(tmp_path / "journal.jsonl")
        cache = ResultCache(tmp_path / "cache")
        # First driver "crashes" after two cells: simulate by journaling a
        # partial run.
        SweepRunner(cache=cache, journal=journal).run(specs[:2])

        executions = []
        original = ExperimentSpec.execute

        def counting_execute(self):
            executions.append(self.seed)
            return original(self)

        monkeypatch.setattr(ExperimentSpec, "execute", counting_execute)
        runner = SweepRunner(cache=cache, journal=journal, resume=True)
        records = runner.run(specs)
        assert executions == [specs[2].seed]
        assert runner.last_resumed == 2 and runner.last_executed == 1
        assert len(records) == 3

    def test_resume_restores_failures_without_rerunning_them(self, tmp_path):
        specs = small_specs(2)
        journal = SweepJournal(tmp_path / "journal.jsonl")
        cache = ResultCache(tmp_path / "cache")
        flaky = FlakyExecutor(SerialExecutor(), plan={1: {1: "exception", 2: "exception"}})
        SweepRunner(
            executor=flaky,
            retries=1,
            backoff=0.0,
            max_failures=None,
            journal=journal,
            cache=cache,
        ).run(specs)
        runner = SweepRunner(cache=cache, journal=journal, resume=True, max_failures=None)
        records = runner.run(specs)
        assert runner.last_executed == 0 and runner.last_resumed == 2
        assert isinstance(records[1], CellFailure)
        assert records[1].error["type"] == "InjectedFault"

    def test_resume_tolerates_a_torn_journal_tail(self, tmp_path):
        specs = small_specs(1)
        journal = SweepJournal(tmp_path / "journal.jsonl")
        cache = ResultCache(tmp_path / "cache")
        SweepRunner(cache=cache, journal=journal).run(specs)
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"digest": "truncat')  # mid-write driver crash
        runner = SweepRunner(cache=cache, journal=journal, resume=True)
        records = runner.run(specs)
        assert runner.last_resumed == 1 and len(records) == 1

    def test_resume_recovers_from_every_torn_tail_offset(self, tmp_path):
        """Property: wherever a crash tears the final journal line, resume
        keeps every complete entry and routes only the torn cell back
        through execution (served by the warm cache here, for speed)."""
        specs = small_specs(2)
        journal_path = tmp_path / "journal.jsonl"
        cache = ResultCache(tmp_path / "cache")
        clean = SweepRunner(cache=cache, journal=journal_path).run(specs)
        data = journal_path.read_bytes()
        boundary = data.rstrip(b"\n").rfind(b"\n") + 1  # final line starts here
        assert boundary > 0 and len(data) - boundary > 10
        for offset in range(boundary, len(data)):
            torn_path = tmp_path / "torn.jsonl"
            torn_path.write_bytes(data[:offset])
            # Cutting only the trailing newline leaves valid JSON; every
            # other offset leaves a torn tail that must be dropped.
            try:
                json.loads(data[boundary:offset].decode("utf-8", "strict"))
                expect_resumed = 2
            except ValueError:
                expect_resumed = 1
            runner = SweepRunner(cache=cache, journal=torn_path, resume=True)
            records = runner.run(specs)
            assert runner.last_resumed == expect_resumed, f"offset {offset}"
            assert runner.last_cache_hits == 2 - expect_resumed
            assert runner.last_executed == 0
            assert [stable(r) for r in records] == [stable(r) for r in clean]

    def test_resume_reexecutes_only_the_torn_cell(self, tmp_path, monkeypatch):
        """With no cache entry to fall back on, the torn cell — and only
        the torn cell — is actually re-executed."""
        specs = small_specs(2)
        journal_path = tmp_path / "journal.jsonl"
        cache = ResultCache(tmp_path / "cache")
        SweepRunner(cache=cache, journal=journal_path).run(specs)
        data = journal_path.read_bytes()
        boundary = data.rstrip(b"\n").rfind(b"\n") + 1
        journal_path.write_bytes(data[: boundary + 20])  # tear the final line
        # Evict the torn cell's cache entry so resume must recompute it.
        from repro.engine import spec_digest

        (tmp_path / "cache" / f"{spec_digest(specs[1])}.json").unlink()
        executions = []
        original = ExperimentSpec.execute

        def counting_execute(self):
            executions.append(self.seed)
            return original(self)

        monkeypatch.setattr(ExperimentSpec, "execute", counting_execute)
        runner = SweepRunner(cache=cache, journal=journal_path, resume=True)
        records = runner.run(specs)
        assert executions == [specs[1].seed]
        assert runner.last_resumed == 1 and runner.last_executed == 1
        assert len(records) == 2

    def test_resume_reexecutes_when_cache_entry_is_missing(self, tmp_path):
        specs = small_specs(1)
        journal = SweepJournal(tmp_path / "journal.jsonl")
        cache = ResultCache(tmp_path / "cache")
        SweepRunner(cache=cache, journal=journal).run(specs)
        for entry in (tmp_path / "cache").iterdir():
            entry.unlink()
        runner = SweepRunner(cache=cache, journal=journal, resume=True)
        with pytest.warns(RuntimeWarning, match="result cache has no entry"):
            records = runner.run(specs)
        assert runner.last_executed == 1 and len(records) == 1

    def test_resume_requires_journal_and_cache(self, tmp_path):
        with pytest.raises(ValueError, match="requires a journal"):
            SweepRunner(resume=True, cache=ResultCache(tmp_path / "c"))
        with pytest.raises(ValueError, match="requires a cache"):
            SweepRunner(resume=True, journal=tmp_path / "j.jsonl")
