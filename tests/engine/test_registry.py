"""Unit tests for the protocol registry."""

from __future__ import annotations

import pytest

from repro.engine.registry import (
    ProtocolEntry,
    ProtocolRegistry,
    available_protocols,
    get_protocol,
    register_protocol,
)


def _dummy_runner(*, n: int = 3, duration: float = 10.0, seed: int = 0, extra: float = 1.0):
    return (n, duration, seed, extra)


class TestRegistration:
    def test_builtins_are_registered(self):
        names = available_protocols()
        for system in (
            "bitcoin", "ethereum", "byzcoin", "algorand",
            "peercensus", "redbelly", "hyperledger",
        ):
            assert system in names

    def test_unknown_protocol_raises_with_candidates(self):
        with pytest.raises(KeyError, match="unknown protocol"):
            get_protocol("dogecoin")

    def test_decorator_registers_into_given_registry(self):
        registry = ProtocolRegistry()
        decorated = register_protocol("dummy", registry=registry)(_dummy_runner)
        assert decorated is _dummy_runner  # the runner is returned unchanged
        entry = registry.get("dummy")
        assert entry.runner is _dummy_runner
        assert "dummy" in registry and len(registry) == 1

    def test_duplicate_add_rejected_without_replace(self):
        registry = ProtocolRegistry()
        registry.add(ProtocolEntry(name="dummy", runner=_dummy_runner))
        with pytest.raises(ValueError, match="already registered"):
            registry.add(ProtocolEntry(name="dummy", runner=_dummy_runner))

    def test_accepts_reflects_runner_signature(self):
        entry = ProtocolEntry(name="dummy", runner=_dummy_runner)
        assert entry.accepts("extra")
        assert entry.accepts("n")
        assert not entry.accepts("token_rate")


class TestFaultRunners:
    def test_bitcoin_has_a_crash_runner(self):
        from repro.protocols.faults import run_bitcoin_with_crashes

        entry = get_protocol("bitcoin")
        assert entry.runner_for("crash") is run_bitcoin_with_crashes
        assert entry.accepts("crash_at", "crash")

    def test_committee_has_a_byzantine_runner(self):
        entry = get_protocol("committee")
        assert entry.runner_for("byzantine") is entry.runner

    def test_unknown_fault_kind_raises(self):
        with pytest.raises(KeyError, match="no runner for fault kind"):
            get_protocol("hyperledger").runner_for("crash")

    def test_none_fault_kind_is_the_base_runner(self):
        entry = get_protocol("bitcoin")
        assert entry.runner_for(None) is entry.runner


class TestRegimeMetadata:
    def test_pow_systems_carry_a_fork_prone_regime(self):
        for name in ("bitcoin", "ethereum"):
            entry = get_protocol(name)
            assert entry.fork_prone, name
            assert entry.table1, name

    def test_consensus_systems_have_no_table1_overrides(self):
        assert get_protocol("hyperledger").table1 == {}

    def test_fairness_merit_defaults(self):
        assert get_protocol("byzcoin").fairness_merit == "zipf"
        assert get_protocol("bitcoin").fairness_merit == "uniform"


class TestDecoratorCollisions:
    def test_same_name_twice_raises_without_replace(self):
        registry = ProtocolRegistry()
        register_protocol("dup", registry=registry)(_dummy_runner)
        with pytest.raises(ValueError, match="already registered"):
            register_protocol("dup", registry=registry)(_dummy_runner)

    def test_explicit_replace_shadows_loudly_opted_in(self):
        registry = ProtocolRegistry()
        register_protocol("dup", registry=registry)(_dummy_runner)

        def other(*, n=1, duration=1.0, seed=0):
            return None

        register_protocol("dup", registry=registry, replace=True)(other)
        assert registry.get("dup").runner is other
