"""Tests for the spec-keyed ResultCache and its SweepRunner wiring."""

from __future__ import annotations

import json

import pytest

from repro.engine import ExperimentSpec, ResultCache, SweepRunner, spec_digest
from repro.engine.spec import ExperimentSpec as Spec


def _specs(count: int = 2):
    return [
        ExperimentSpec(protocol="hyperledger", replicas=3, duration=30.0, seed=seed)
        for seed in range(count)
    ]


class TestResultCache:
    def test_digest_is_stable_and_spec_sensitive(self):
        a, b = _specs(2)
        assert spec_digest(a) == spec_digest(ExperimentSpec.from_json(a.to_json()))
        assert spec_digest(a) != spec_digest(b)

    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        (spec,) = _specs(1)
        assert cache.get(spec) is None
        result = spec.execute()
        path = cache.put(result)
        assert path.exists() and path.parent == tmp_path
        cached = cache.get(spec)
        assert cached is not None
        assert cached.to_json() == result.to_json()  # byte-identical artifact
        assert cached.run is None  # live objects never round-trip

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (spec,) = _specs(1)
        cache.put(spec.execute())
        cache.path_for(spec).write_text("{not json", encoding="utf-8")
        assert cache.get(spec) is None

    def test_entry_for_a_different_spec_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec_a, spec_b = _specs(2)
        result = spec_a.execute()
        cache.put(result)
        # Simulate a collision/hand-copied file: b's slot holds a's payload.
        cache.path_for(spec_b).write_text(result.to_json(), encoding="utf-8")
        assert cache.get(spec_b) is None
        assert cache.get(spec_a) is not None

    def test_hit_and_miss_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        (spec,) = _specs(1)
        cache.get(spec)
        cache.put(spec.execute())
        cache.get(spec)
        assert cache.misses == 1
        assert cache.hits == 1


class TestSweepRunnerCache:
    def test_second_run_performs_zero_simulator_events(self, tmp_path, monkeypatch):
        specs = _specs(2)
        cold = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        cold_results = cold.run(specs)
        assert cold.last_cache_hits == 0

        executions = []
        original = Spec.execute

        def counting_execute(self):
            executions.append(self.label or self.protocol)
            return original(self)

        monkeypatch.setattr(Spec, "execute", counting_execute)
        warm = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        warm_results = warm.run(specs)
        assert executions == []  # nothing simulated: all cells from disk
        assert warm.last_cache_hits == len(specs)
        assert [r.to_json() for r in warm_results] == [
            r.to_json() for r in cold_results
        ]  # byte-identical, timings included

    def test_partial_hits_execute_only_missing_cells(self, tmp_path):
        specs = _specs(3)
        first = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        first.run(specs[:1])

        second = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        results = second.run(specs)
        assert second.last_cache_hits == 1
        assert [r.spec.seed for r in results] == [0, 1, 2]  # spec order kept

    def test_cache_write_failure_does_not_lose_the_sweep(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)

        def failing_put(result):
            raise OSError("disk full")

        monkeypatch.setattr(cache, "put", failing_put)
        runner = SweepRunner(jobs=1, cache=cache)
        with pytest.warns(RuntimeWarning, match="cache write failed"):
            results = runner.run(_specs(2))
        assert [r.spec.seed for r in results] == [0, 1]  # results survive

    def test_uncached_runner_reports_zero_hits(self):
        runner = SweepRunner(jobs=1)
        runner.run(_specs(1))
        assert runner.last_cache_hits == 0

    def test_cache_results_survive_json_payload_roundtrip(self, tmp_path):
        specs = _specs(1)
        runner = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        (result,) = runner.run(specs)
        payload = json.loads(result.to_json())
        assert payload["spec"]["seed"] == 0
        assert "classification" in payload
