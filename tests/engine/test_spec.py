"""Unit tests for the declarative experiment specifications."""

from __future__ import annotations

import math

import pytest

from repro.engine import (
    ChannelSpec,
    ExperimentSpec,
    FaultSpec,
    RunResult,
    WorkloadSpec,
    table1_spec,
)
from repro.network.channels import (
    LossyChannel,
    PartiallySynchronousChannel,
    SynchronousChannel,
)


class TestChannelSpec:
    def test_builds_synchronous_channel_with_spec_seed(self):
        spec = ChannelSpec(kind="synchronous", params={"delta": 2.0, "min_delay": 0.5})
        channel = spec.build(default_seed=11)
        assert isinstance(channel, SynchronousChannel)
        assert channel.delta == 2.0 and channel.min_delay == 0.5

    def test_drop_probability_wraps_in_lossy(self):
        channel = ChannelSpec(kind="synchronous", drop_probability=0.4).build(default_seed=1)
        assert isinstance(channel, LossyChannel)
        assert channel.drop_probability == 0.4
        assert isinstance(channel.inner, SynchronousChannel)

    def test_partial_synchrony_kind(self):
        channel = ChannelSpec(kind="partial", params={"gst": 20.0}).build(default_seed=0)
        assert isinstance(channel, PartiallySynchronousChannel)
        assert channel.gst == 20.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown channel kind"):
            ChannelSpec(kind="pigeon").build(default_seed=0)

    def test_round_trip(self):
        spec = ChannelSpec(kind="partial", params={"gst": 20.0}, drop_probability=0.1, seed=3)
        assert ChannelSpec.from_dict(spec.to_dict()) == spec


class TestSerialization:
    def test_full_round_trip_through_json(self):
        spec = ExperimentSpec(
            protocol="bitcoin",
            replicas=4,
            duration=80.0,
            seed=13,
            channel=ChannelSpec(kind="synchronous", params={"delta": 3.0}, drop_probability=0.2),
            workload=WorkloadSpec(use_lrc=False, merit="zipf", merit_exponent=1.5),
            fault=FaultSpec(kind="crash", crash_at={"p1": 30.0}),
            oracle_k=2,
            params={"token_rate": 0.4},
            label="round-trip",
        )
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_infinite_oracle_bound_survives_json(self):
        spec = ExperimentSpec(protocol="bitcoin", oracle_k=math.inf)
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored.oracle_k == math.inf
        assert "Infinity" not in spec.to_json()  # strict JSON payload

    def test_with_updates_returns_modified_copy(self):
        spec = ExperimentSpec(protocol="bitcoin", seed=1)
        other = spec.with_updates(seed=9)
        assert other.seed == 9 and spec.seed == 1 and other.protocol == "bitcoin"


class TestBuildKwargs:
    def test_minimal_spec_passes_only_core_kwargs(self):
        kwargs = ExperimentSpec(protocol="hyperledger", replicas=4, duration=50.0, seed=3).build_kwargs()
        assert kwargs == {"n": 4, "duration": 50.0, "seed": 3}

    def test_unknown_param_fails_loudly(self):
        spec = ExperimentSpec(protocol="hyperledger", params={"token_rate": 0.4})
        with pytest.raises(ValueError, match="does not accept parameter 'token_rate'"):
            spec.build_kwargs()

    def test_selection_string_is_materialized(self):
        from repro.core.selection import LongestChain

        kwargs = ExperimentSpec(
            protocol="bitcoin", params={"selection": "longest"}
        ).build_kwargs()
        assert isinstance(kwargs["selection"], LongestChain)

    def test_unknown_selection_rejected(self):
        spec = ExperimentSpec(protocol="bitcoin", params={"selection": "coin-flip"})
        with pytest.raises(ValueError, match="unknown selection function"):
            spec.build_kwargs()

    def test_oracle_bound_builds_frugal_oracle(self):
        from repro.oracle.theta import FrugalOracle

        kwargs = ExperimentSpec(
            protocol="bitcoin", oracle_k=2, params={"token_rate": 0.4}
        ).build_kwargs()
        assert isinstance(kwargs["oracle"], FrugalOracle)
        assert kwargs["oracle"].k == 2

    def test_fault_spec_routes_kwargs(self):
        kwargs = ExperimentSpec(
            protocol="bitcoin",
            fault=FaultSpec(kind="crash", crash_at={"p0": 10.0}),
        ).build_kwargs()
        assert kwargs["crash_at"] == {"p0": 10.0}

    def test_model_fault_spec_builds_fault_model(self):
        from repro.network.faults import PartitionFault

        kwargs = ExperimentSpec(
            protocol="bitcoin",
            fault=FaultSpec(
                kind="partition",
                params={"groups": [["p0"], ["p1"]], "at": 5.0, "heal_at": 20.0},
            ),
        ).build_kwargs()
        assert isinstance(kwargs["fault"], PartitionFault)
        assert kwargs["fault"].heal_at == 20.0
        assert "crash_at" not in kwargs and "byzantine" not in kwargs


class TestFaultSpec:
    def test_legacy_kinds_use_their_runners(self):
        assert FaultSpec(kind="crash", crash_at={"p0": 5.0}).uses_runner
        assert FaultSpec(kind="byzantine", byzantine=("p1",)).uses_runner
        assert FaultSpec(kind="crash", crash_at={"p0": 5.0}).runner_kind == "crash"

    def test_params_route_legacy_kind_through_the_registry(self):
        from repro.network.faults import CrashFault

        spec = FaultSpec(kind="crash", params={"at": {"p0": 5.0}})
        assert not spec.uses_runner
        assert spec.runner_kind is None
        kwargs = spec.runner_kwargs(default_seed=3)
        assert isinstance(kwargs["fault"], CrashFault)

    def test_model_kind_builds_with_spec_seed_default(self):
        spec = FaultSpec(kind="eclipse", params={"victim": "p0", "until": 9.0})
        fault = spec.build(default_seed=42)
        assert fault.victim == "p0"

    def test_unknown_kind_raises_uniform_vocabulary_error(self):
        from repro.core.errors import UnknownVocabularyError

        spec = FaultSpec(kind="gremlins")
        with pytest.raises(UnknownVocabularyError) as excinfo:
            spec.to_kwargs()
        message = str(excinfo.value)
        assert message.startswith("unknown fault 'gremlins'; registered:")
        assert "'churn'" in message and "'partition'" in message
        # The uniform error still matches historic except clauses.
        assert isinstance(excinfo.value, (KeyError, ValueError))

    def test_legacy_serialization_shape_unchanged(self):
        # Digest stability: a pre-existing fault spec must serialize to
        # exactly the pre-registry three-key shape (cache keys depend on it).
        spec = FaultSpec(kind="crash", crash_at={"p1": 30.0})
        assert spec.to_dict() == {
            "kind": "crash",
            "crash_at": {"p1": 30.0},
            "byzantine": [],
        }

    def test_params_and_seed_round_trip(self):
        spec = FaultSpec(kind="churn", params={"leave": {"p2": 10.0}}, seed=5)
        data = spec.to_dict()
        assert data["params"] == {"leave": {"p2": 10.0}} and data["seed"] == 5
        assert FaultSpec.from_dict(data) == spec

    def test_bare_string_is_kind_shorthand(self):
        assert FaultSpec.from_dict("partition") == FaultSpec(kind="partition")

    def test_unknown_score_rejected(self):
        with pytest.raises(ValueError, match="unknown score"):
            ExperimentSpec(protocol="bitcoin", score="entropy").build_score()


class TestExecution:
    def test_execute_matches_direct_run(self):
        from repro.protocols.classification import classify_run
        from repro.protocols.hyperledger import run_hyperledger

        record = ExperimentSpec(protocol="hyperledger", replicas=3, duration=40.0, seed=5).execute()
        direct = classify_run(run_hyperledger(n=3, duration=40.0, seed=5))
        assert record.classification["describe"] == direct.describe()
        assert record.classification["matches_paper"] is True
        assert record.run is not None and record.classification_result is not None

    def test_result_round_trips_through_json(self):
        import json

        record = ExperimentSpec(protocol="hyperledger", replicas=3, duration=40.0, seed=5).execute()
        from repro.engine import RunResult

        restored = RunResult.from_dict(json.loads(record.to_json()))
        assert restored.classification == record.classification
        assert restored.forks == record.forks
        assert restored.run is None  # live objects do not survive serialization

    def test_network_counters_are_recorded(self):
        record = ExperimentSpec(protocol="hyperledger", replicas=3, duration=40.0, seed=5).execute()
        net = record.network
        assert net["messages_sent"] == net["messages_delivered"] + net["messages_dropped"]
        assert net["events_processed"] > 0
        assert record.timings["run_seconds"] > 0
        # Fault-free artifacts never grow the churn-only keys.
        assert "messages_quarantined" not in net
        assert "degradation" not in record.to_dict()

    def test_model_fault_records_degradation_summary(self):
        import json

        record = ExperimentSpec(
            protocol="bitcoin",
            replicas=4,
            duration=60.0,
            seed=5,
            params={"token_rate": 0.4},
            fault=FaultSpec(
                kind="partition",
                params={"groups": [["p0", "p1"], ["p2", "p3"]], "at": 10.0, "heal_at": 40.0},
            ),
        ).execute()
        assert record.degradation is not None
        assert record.degradation["heal_at"] == 40.0
        assert record.degradation["final_divergence_depth"] == 0
        restored = RunResult.from_dict(json.loads(record.to_json()))
        assert restored.degradation == record.degradation


class TestTable1Spec:
    def test_pow_rows_are_fork_prone(self):
        spec = table1_spec("bitcoin", n=5, duration=100.0, seed=7)
        assert spec.params["token_rate"] == 0.4
        assert spec.channel is not None and spec.channel.params["delta"] == 3.0

    def test_consensus_rows_use_defaults(self):
        spec = table1_spec("hyperledger", n=5, duration=100.0, seed=7)
        assert spec.channel is None and spec.params == {}


class TestOracleBoundValidation:
    def test_fractional_bound_rejected(self):
        spec = ExperimentSpec(protocol="bitcoin", oracle_k=1.5, params={"token_rate": 0.4})
        with pytest.raises(ValueError, match="positive integer or inf"):
            spec.build_kwargs()

    def test_nonpositive_bound_rejected(self):
        spec = ExperimentSpec(protocol="bitcoin", oracle_k=0, params={"token_rate": 0.4})
        with pytest.raises(ValueError, match="positive integer or inf"):
            spec.build_kwargs()


class TestMonitorOptIn:
    def test_monitor_field_round_trips(self):
        spec = ExperimentSpec(protocol="bitcoin", monitor=True, params={"token_rate": 0.4})
        assert spec.to_dict()["monitor"] is True
        assert ExperimentSpec.from_json(spec.to_json()).monitor is True

    def test_monitor_absent_from_default_serialization(self):
        # Keeps spec digests (and therefore cache keys) of pre-existing
        # specs unchanged.
        spec = ExperimentSpec(protocol="bitcoin", params={"token_rate": 0.4})
        assert "monitor" not in spec.to_dict()
        assert ExperimentSpec.from_json(spec.to_json()).monitor is False

    def test_build_kwargs_materializes_a_monitor(self):
        from repro.core.consistency_index import ConsistencyMonitor

        spec = ExperimentSpec(protocol="bitcoin", monitor=True, params={"token_rate": 0.4})
        kwargs = spec.build_kwargs()
        assert isinstance(kwargs["monitor"], ConsistencyMonitor)
        plain = ExperimentSpec(protocol="bitcoin", params={"token_rate": 0.4})
        assert "monitor" not in plain.build_kwargs()

    def test_execute_attaches_verdicts(self):
        spec = ExperimentSpec(
            protocol="hyperledger", replicas=3, duration=20.0, seed=1, monitor=True
        )
        record = spec.execute()
        assert record.consistency is not None
        assert set(record.consistency["properties"]) == {
            "block-validity",
            "local-monotonic-read",
            "strong-prefix",
            "ever-growing-tree",
            "eventual-prefix",
        }
        payload = record.to_dict()
        assert payload["consistency"]["strong"] == record.consistency["strong"]
        restored = RunResult.from_dict(payload)
        assert restored.consistency == record.consistency

    def test_plain_execute_has_no_consistency_key(self):
        spec = ExperimentSpec(protocol="hyperledger", replicas=3, duration=20.0, seed=1)
        record = spec.execute()
        assert record.consistency is None
        assert "consistency" not in record.to_dict()
