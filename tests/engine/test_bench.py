"""Tests for the perf benchmark harness (python -m repro bench)."""

from __future__ import annotations

import json

from repro.engine.bench import (
    BENCH_SCHEMA,
    _fork_heavy_trace,
    _read_heavy_forked_history,
    _replay_trace,
    run_bench,
    write_report,
)
from repro.core.selection import LongestChain, _ReferenceLongestChain


class TestForkHeavyTrace:
    def test_trace_is_deterministic_in_the_seed(self):
        a = _fork_heavy_trace(60, seed=3)
        b = _fork_heavy_trace(60, seed=3)
        assert [blk.block_id for blk in a] == [blk.block_id for blk in b]
        c = _fork_heavy_trace(60, seed=4)
        assert [blk.block_id for blk in a] != [blk.block_id for blk in c]

    def test_trace_is_actually_fork_heavy(self):
        trace = _fork_heavy_trace(120, seed=3)
        _, tree, _ = _replay_trace(trace, LongestChain(), reads_per_append=1)
        assert len(tree) == 121
        assert len(tree.leaves()) > 10  # many competing branches
        assert tree.height > 20  # and real depth, not a star

    def test_replay_agrees_between_indexed_and_reference(self):
        trace = _fork_heavy_trace(80, seed=5)
        _, _, indexed_tip = _replay_trace(trace, LongestChain(), 2)
        _, _, reference_tip = _replay_trace(trace, _ReferenceLongestChain(), 2)
        assert indexed_tip == reference_tip


class TestReadHeavyForkedHistory:
    def test_deterministic_in_the_seed(self):
        a = _read_heavy_forked_history(levels=20, processes=4, seed=3)
        b = _read_heavy_forked_history(levels=20, processes=4, seed=3)
        assert [e.eid for e in a] == [e.eid for e in b]
        assert [str(e) for e in a] == [str(e) for e in b]

    def test_shape_is_ec_but_not_sc(self):
        from repro.core.consistency import (
            check_eventual_consistency,
            check_strong_consistency,
        )

        history = _read_heavy_forked_history(levels=15, processes=4, seed=3)
        assert not check_strong_consistency(history).holds
        assert check_eventual_consistency(history).holds
        assert len(history.read_responses()) == 15 * 4 + 4


class TestRunBench:
    def test_quick_report_shape_and_artifact(self, tmp_path):
        report = run_bench(seed=11, quick=True)
        assert report["schema"] == BENCH_SCHEMA
        scenarios = report["scenarios"]
        for name in (
            "selection_longest_fork_heavy",
            "selection_heaviest_fork_heavy",
            "selection_ghost_fork_heavy",
            "consistency_strong_chain_heavy",
            "consistency_eventual_fork_heavy",
            "consistency_monitor_fork_heavy",
            "simulation_flood_heavy",
            "simulation_lrc_gossip",
            "run_longest_fork_heavy",
            "run_ghost_fork_heavy",
            "table1_sweep",
            "cache_sweep",
        ):
            assert name in scenarios, f"missing scenario {name}"
        for name in (
            "selection_longest_fork_heavy",
            "selection_heaviest_fork_heavy",
            "selection_ghost_fork_heavy",
            "consistency_strong_chain_heavy",
            "consistency_eventual_fork_heavy",
        ):
            data = scenarios[name]
            assert data["speedup"] is not None and data["speedup"] > 1.0
            assert data["indexed_seconds"] > 0
            assert data["reference_seconds"] > 0
        for name in ("consistency_strong_chain_heavy", "consistency_eventual_fork_heavy"):
            assert scenarios[name]["holds"] is True
            assert scenarios[name]["reads"] > 100
        monitor = scenarios["consistency_monitor_fork_heavy"]
        assert monitor["agrees_with_post_hoc"] is True
        assert monitor["strong"] is False and monitor["eventual"] is True
        assert monitor["events"] > 0 and monitor["reads"] > 100
        cache = scenarios["cache_sweep"]
        assert cache["cold_hits"] == 0
        assert cache["warm_hits"] == cache["cells"]
        flood = scenarios["simulation_flood_heavy"]
        assert flood["outcomes_identical"] is True
        assert flood["events"] > 0 and flood["batched_seconds"] > 0
        lrc = scenarios["simulation_lrc_gossip"]
        assert lrc["histories_identical"] is True
        assert lrc["messages_dropped"] > 0  # the lossy channel actually bites
        assert lrc["history_events"] > 0

        path = write_report(report, tmp_path)
        assert path.name == f"BENCH_{report['date']}.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["scenarios"].keys() == scenarios.keys()
        assert "profiles" not in payload  # only recorded when profiling


class TestSimulationScenarios:
    def test_flood_network_is_deterministic_and_batched_matches_reference(self):
        from repro.engine.bench import _flood_network, _run_flood

        _, batched = _run_flood(_flood_network(8, 2, seed=5, batched=True))
        _, reference = _run_flood(_flood_network(8, 2, seed=5, batched=False))
        assert batched == reference
        assert batched["events"] > 0
        # Every process heard every rumor (reliable channel, full flood).
        rumor_sets = set(batched["seen"].values())
        assert len(rumor_sets) == 1 and len(next(iter(rumor_sets))) == 16

    def test_lrc_network_histories_match(self):
        from repro.engine.bench import _lrc_network, _run_lrc

        _, batched = _run_lrc(_lrc_network(6, 2, publishers=2, seed=5, batched=True))
        _, reference = _run_lrc(_lrc_network(6, 2, publishers=2, seed=5, batched=False))
        assert batched["history"] == reference["history"]
        assert batched["messages_sent"] == reference["messages_sent"]


class TestProfile:
    def test_profile_report_carries_a_table_per_section(self):
        report = run_bench(seed=11, quick=True, profile=True)
        profiles = report["profiles"]
        assert set(profiles) == {
            "selection",
            "consistency",
            "simulation",
            "topology",
            "workload",
            "resilience",
            "checkpoint",
            "sweeps",
            "protocol_runs",
            "table1_sweep",
            "cache_sweep",
        }
        simulation = profiles["simulation"]
        assert simulation["scenarios"] == [
            "simulation_flood_heavy",
            "simulation_lrc_gossip",
        ]
        assert "cumulative" in simulation["top25_cumulative"]
        assert "ncalls" in simulation["top25_cumulative"]
