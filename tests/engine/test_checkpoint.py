"""Tests for :mod:`repro.engine.checkpoint`.

The byte-identity of restored *histories* is pinned by the equivalence
oracle in ``tests/network/test_checkpoint_equivalence.py``; this module
covers the artifact layer around it — the versioned on-disk format and
its torn-file detection, the crash-safe writer and its previous-snapshot
fallback, the ambient configuration, spec-digest stability, spec-level
execution, and the pool executor's checkpoint-aware retries.
"""

from __future__ import annotations

import json
import os
import pickle

import pytest

from repro.engine import (
    CHECKPOINT_SCHEMA,
    CellTask,
    CheckpointCorruptionError,
    CheckpointWriter,
    ExperimentSpec,
    FlakyExecutor,
    PoolExecutor,
    ResultCache,
    SimulationCheckpoint,
    SweepRunner,
    checkpoint_context,
    checkpoint_path_for,
    load_checkpoint,
    read_checkpoint_header,
    run_spec_with_checkpoints,
    spec_digest,
)
from repro.engine.checkpoint import ambient_checkpoint_config


def _spec(**overrides) -> ExperimentSpec:
    base = dict(protocol="bitcoin", replicas=4, duration=50.0, seed=3)
    base.update(overrides)
    return ExperimentSpec(**base)


def _one_snapshot(spec: ExperimentSpec) -> SimulationCheckpoint:
    captured = []
    with checkpoint_context(
        150, lambda live: captured.append(SimulationCheckpoint.capture(live))
    ):
        spec.execute()
    assert captured
    return captured[0]


class TestCheckpointFormat:
    def test_round_trip(self):
        snapshot = _one_snapshot(_spec())
        data = snapshot.to_bytes()
        parsed = SimulationCheckpoint.from_bytes(data)
        assert parsed.payload == snapshot.payload
        assert parsed.clock == snapshot.clock
        assert parsed.event_count == snapshot.event_count
        assert parsed.phase == snapshot.phase

    def test_header_is_one_json_line(self):
        snapshot = _one_snapshot(_spec())
        head_line = snapshot.to_bytes().split(b"\n", 1)[0]
        head = json.loads(head_line)
        assert head["schema"] == CHECKPOINT_SCHEMA
        assert head["pickle_bytes"] == len(snapshot.payload)
        assert head["event_count"] == snapshot.event_count

    def test_truncated_payload_is_detected(self):
        data = _one_snapshot(_spec()).to_bytes()
        with pytest.raises(CheckpointCorruptionError, match="torn"):
            SimulationCheckpoint.from_bytes(data[:-7])

    def test_flipped_payload_byte_is_detected(self):
        data = bytearray(_one_snapshot(_spec()).to_bytes())
        data[-1] ^= 0xFF
        with pytest.raises(CheckpointCorruptionError, match="digest"):
            SimulationCheckpoint.from_bytes(bytes(data))

    def test_garbage_header_is_detected(self):
        with pytest.raises(CheckpointCorruptionError):
            SimulationCheckpoint.from_bytes(b"not json\n" + b"x" * 32)
        with pytest.raises(CheckpointCorruptionError, match="header"):
            SimulationCheckpoint.from_bytes(b"no newline at all")

    def test_unknown_schema_is_rejected(self):
        head = json.dumps({"schema": "repro.checkpoint/999"}).encode()
        with pytest.raises(CheckpointCorruptionError, match="schema"):
            SimulationCheckpoint.from_bytes(head + b"\n")

    def test_restore_rebuilds_a_live_run(self):
        snapshot = _one_snapshot(_spec())
        live = snapshot.restore()
        result = live.finish()
        assert result.history.events  # the continued run finished


class TestCheckpointWriter:
    def test_write_then_rotate(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        spec = _spec()
        writer = CheckpointWriter(path, spec=json.loads(spec.to_json()))
        with checkpoint_context(150, writer):
            spec.execute()
        assert writer.writes >= 2
        assert os.path.exists(path)
        assert os.path.exists(str(tmp_path / "run.prev.ckpt"))
        # No tmp droppings left behind by the atomic rename.
        assert all(".tmp." not in name for name in os.listdir(tmp_path))
        snapshot = load_checkpoint(path)
        assert snapshot.event_count == writer.last_event_count
        assert snapshot.spec == json.loads(spec.to_json())

    def test_torn_primary_falls_back_to_previous(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        spec = _spec()
        writer = CheckpointWriter(path, spec=json.loads(spec.to_json()))
        with checkpoint_context(150, writer):
            spec.execute()
        good_prev = load_checkpoint(str(tmp_path / "run.prev.ckpt"))
        # Tear the primary the way a hard kill mid-write would.
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        with pytest.warns(RuntimeWarning, match="falling back"):
            snapshot = load_checkpoint(path)
        assert snapshot.payload == good_prev.payload

    def test_missing_both_files_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(str(tmp_path / "absent.ckpt"))

    def test_read_checkpoint_header(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        spec = _spec()
        writer = CheckpointWriter(path, spec=json.loads(spec.to_json()))
        with checkpoint_context(150, writer):
            spec.execute()
        head = read_checkpoint_header(path)
        assert head["schema"] == CHECKPOINT_SCHEMA
        assert head["spec"]["protocol"] == "bitcoin"


class TestAmbientConfig:
    def test_absent_by_default(self):
        assert ambient_checkpoint_config() is None

    def test_install_and_reset(self):
        sink = lambda live: None  # noqa: E731
        with checkpoint_context(100, sink) as config:
            assert ambient_checkpoint_config() is config
            assert config.every == 100
            assert config.sink is sink
        assert ambient_checkpoint_config() is None

    def test_reset_even_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with checkpoint_context(100, lambda live: None):
                raise RuntimeError("boom")
        assert ambient_checkpoint_config() is None


class TestSpecKnobs:
    def test_digest_unchanged_when_unset(self):
        # The serialized form must not mention checkpointing unless set,
        # so every pre-checkpoint cache entry stays addressable.
        spec = _spec()
        assert "checkpoint" not in spec.to_json()
        assert spec_digest(spec) == spec_digest(ExperimentSpec.from_json(spec.to_json()))

    def test_knobs_serialize_when_set(self, tmp_path):
        spec = _spec(checkpoint_every=500, checkpoint_path=str(tmp_path / "x.ckpt"))
        data = json.loads(spec.to_json())
        assert data["checkpoint_every"] == 500
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored.checkpoint_every == 500
        assert restored.checkpoint_path == spec.checkpoint_path

    def test_execute_honours_knobs(self, tmp_path):
        path = str(tmp_path / "spec.ckpt")
        spec = _spec(checkpoint_every=150, checkpoint_path=path)
        clean = _spec().execute()
        record = spec.execute()
        assert os.path.exists(path)
        # Checkpointing must not change the simulated execution (timings
        # and the knob-bearing spec differ; the run-derived stats do not).
        assert record.classification == clean.classification
        assert record.forks == clean.forks
        assert record.blocks == clean.blocks

    def test_execute_rejects_non_positive_cadence(self):
        with pytest.raises(ValueError, match="positive"):
            _spec(checkpoint_every=0).execute()


class TestRunSpecWithCheckpoints:
    def test_clean_run_writes_and_matches(self, tmp_path):
        path = str(tmp_path / "cell.ckpt")
        spec = _spec()
        clean = spec.execute()
        result, resumed = run_spec_with_checkpoints(spec, every=150, path=path)
        assert resumed is None
        assert result.stable_dict() == clean.stable_dict()
        assert os.path.exists(path)

    def test_resume_continues_and_matches(self, tmp_path):
        path = str(tmp_path / "cell.ckpt")
        spec = _spec()
        clean = spec.execute()
        run_spec_with_checkpoints(spec, every=150, path=path)
        result, resumed = run_spec_with_checkpoints(
            spec, every=150, path=path, resume_from=path
        )
        assert resumed is not None and resumed > 0
        assert result.stable_dict() == clean.stable_dict()

    def test_missing_resume_file_degrades_to_clean_run(self, tmp_path):
        path = str(tmp_path / "cell.ckpt")
        spec = _spec()
        result, resumed = run_spec_with_checkpoints(
            spec, every=150, path=path, resume_from=str(tmp_path / "nope.ckpt")
        )
        assert resumed is None
        assert result.stable_dict() == spec.execute().stable_dict()

    def test_corrupt_resume_file_warns_and_reruns(self, tmp_path):
        path = str(tmp_path / "cell.ckpt")
        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(b"garbage")
        spec = _spec()
        with pytest.warns(RuntimeWarning, match="re-running"):
            result, resumed = run_spec_with_checkpoints(
                spec, every=150, path=path, resume_from=str(bad)
            )
        assert resumed is None
        assert result.stable_dict() == spec.execute().stable_dict()


class TestPoolCheckpointRetries:
    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            PoolExecutor(checkpoint_every=0, checkpoint_dir=str(tmp_path))
        with pytest.raises(ValueError, match="checkpoint_dir"):
            PoolExecutor(checkpoint_every=100)

    def test_hang_kill_retry_resumes_from_checkpoint(self, tmp_path):
        """The tentpole end-to-end path: attempt 1 hangs after writing one
        checkpoint, the parent's timeout kills it, and the retry resumes
        from that snapshot — producing a result ``stable_dict()``-identical
        to a clean serial run, with ``resumed_from_event`` journaled."""
        spec = _spec(seed=5)
        clean = spec.execute()
        ckpt_dir = str(tmp_path / "ckpts")
        journal_path = tmp_path / "journal.jsonl"
        pool = PoolExecutor(jobs=1, checkpoint_every=100, checkpoint_dir=ckpt_dir)
        flaky = FlakyExecutor(pool, plan={0: {1: "hang"}})
        runner = SweepRunner(
            cache=ResultCache(tmp_path / "cache"),
            executor=flaky,
            retries=1,
            timeout=10.0,
            backoff=0.0,
            journal=journal_path,
        )
        results = runner.run([spec])
        assert results[0].stable_dict() == clean.stable_dict()
        entries = [json.loads(line) for line in journal_path.read_text().splitlines()]
        assert entries[-1]["status"] == "ok"
        assert entries[-1]["attempts"] == 2
        assert entries[-1]["resumed_from_event"] > 0
        assert entries[-1]["schema"] == "repro.sweep-journal/2"
        assert os.path.exists(checkpoint_path_for(ckpt_dir, spec_digest(spec)))

    def test_clean_pool_run_records_no_resume(self, tmp_path):
        spec = _spec(seed=6)
        journal_path = tmp_path / "journal.jsonl"
        pool = PoolExecutor(
            jobs=1, checkpoint_every=100, checkpoint_dir=str(tmp_path / "ckpts")
        )
        runner = SweepRunner(
            cache=ResultCache(tmp_path / "cache"),
            executor=pool,
            journal=journal_path,
        )
        results = runner.run([spec])
        assert results[0].stable_dict() == spec.execute().stable_dict()
        (entry,) = [json.loads(line) for line in journal_path.read_text().splitlines()]
        assert entry["status"] == "ok"
        assert "resumed_from_event" not in entry

    def test_checkpoint_payload_is_loadable_live_run(self, tmp_path):
        spec = _spec(seed=7)
        path = str(tmp_path / "cell.ckpt")
        run_spec_with_checkpoints(spec, every=150, path=path)
        snapshot = load_checkpoint(path)
        live = pickle.loads(snapshot.payload)
        assert live.phase in ("main", "drain", "reads", "done")


class TestCellWorkerCheckpointArgs:
    def test_resume_only_offered_after_first_attempt(self, tmp_path):
        pool = PoolExecutor(
            jobs=1, checkpoint_every=100, checkpoint_dir=str(tmp_path)
        )
        spec = _spec()
        first = CellTask.for_spec(0, spec)
        every, path, resume = pool._checkpoint_args(first)
        assert every == 100 and resume is None
        # Write something at the per-cell path, then a retry attempt sees it.
        with open(path, "wb") as handle:
            handle.write(b"placeholder")
        retry = CellTask.for_spec(0, spec, attempt=2)
        _, _, resume = pool._checkpoint_args(retry)
        assert resume == path
