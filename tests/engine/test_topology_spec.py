"""TopologySpec: JSON round-trips, digest stability, grids, uniform errors.

The engine-side acceptance bars of the topology PR:

* ``ExperimentSpec(topology=...)`` round-trips through JSON and executes
  through the registered vocabulary;
* a spec *without* a topology serializes without the key, so result-cache
  digests of every pre-topology spec are unchanged;
* unknown protocol / channel / topology / selection / score names all
  raise the same :class:`~repro.core.errors.UnknownVocabularyError`
  listing the registered names (satellite: the messages themselves are
  unit-tested here).
"""

from __future__ import annotations

import pytest

from repro.core.errors import UnknownVocabularyError
from repro.engine import ExperimentSpec, TopologySpec, expand_grid, spec_digest
from repro.engine.spec import ChannelSpec, WorkloadSpec
from repro.network.topology import Committee, GossipFanout, Sharded


class TestRoundTrip:
    def test_topology_spec_json_round_trip(self):
        spec = ExperimentSpec(
            protocol="bitcoin",
            replicas=4,
            topology=TopologySpec(
                kind="gossip", params={"fanout": 4}, seed=11
            ),
        )
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.topology.kind == "gossip"
        assert restored.topology.params == {"fanout": 4}
        assert restored.topology.seed == 11

    def test_bare_kind_shorthand(self):
        assert TopologySpec.from_dict("ring") == TopologySpec(kind="ring")

    def test_complex_params_survive(self):
        spec = ExperimentSpec(
            protocol="redbelly",
            topology=TopologySpec(
                kind="committee",
                params={"members": ["p0", "p1"], "include_observers": False},
            ),
        )
        restored = ExperimentSpec.from_json(spec.to_json())
        topology = restored.topology.build(restored.seed)
        assert isinstance(topology, Committee)
        assert topology.members == ("p0", "p1")
        assert topology.include_observers is False


class TestDigestStability:
    def test_unset_topology_is_not_serialized(self):
        spec = ExperimentSpec(protocol="bitcoin")
        assert "topology" not in spec.to_dict()
        assert "topology" not in spec.to_json()

    def test_digest_unchanged_for_pre_topology_specs(self):
        """Existing cache entries must keep their keys byte-for-byte."""
        spec = ExperimentSpec(
            protocol="bitcoin",
            replicas=5,
            duration=60.0,
            seed=7,
            channel=ChannelSpec(kind="synchronous", params={"delta": 3.0}),
            workload=WorkloadSpec(read_interval=4.0),
        )
        expected = (
            '{"channel": {"drop_probability": 0.0, "kind": "synchronous", '
            '"params": {"delta": 3.0}, "seed": null}, "duration": 60.0, '
            '"fault": null, '
            '"label": null, "oracle_k": null, "params": {}, "protocol": "bitcoin", '
            '"replicas": 5, "score": "length", "seed": 7, '
            '"workload": {"merit": null, "merit_exponent": 1.0, '
            '"read_interval": 4.0, "use_lrc": null}}'
        )
        assert spec.to_json() == expected

    def test_digest_participates_only_when_set(self):
        bare = ExperimentSpec(protocol="bitcoin")
        with_topology = bare.with_updates(topology=TopologySpec("gossip"))
        assert spec_digest(bare) != spec_digest(with_topology)
        assert spec_digest(bare) == spec_digest(
            ExperimentSpec.from_json(bare.to_json())
        )


class TestBuild:
    def test_seed_defaults_to_spec_seed(self):
        spec = ExperimentSpec(
            protocol="bitcoin", seed=23, topology=TopologySpec("gossip")
        )
        topology = spec.topology.build(spec.seed)
        assert isinstance(topology, GossipFanout)
        assert topology.seed == 23

    def test_build_kwargs_threads_the_topology(self):
        spec = ExperimentSpec(
            protocol="bitcoin",
            topology=TopologySpec("sharded", params={"shards": 2}),
        )
        kwargs = spec.build_kwargs()
        assert isinstance(kwargs["topology"], Sharded)

    def test_execute_with_topology(self):
        record = ExperimentSpec(
            protocol="bitcoin",
            replicas=5,
            duration=20.0,
            seed=2,
            params={"token_rate": 0.4},
            topology=TopologySpec("gossip", params={"fanout": 2}),
        ).execute()
        assert record.network["messages_sent"] > 0
        full = ExperimentSpec(
            protocol="bitcoin",
            replicas=5,
            duration=20.0,
            seed=2,
            params={"token_rate": 0.4},
        ).execute()
        assert record.network["messages_sent"] < full.network["messages_sent"]


class TestGrid:
    def test_topology_kind_axis(self):
        base = ExperimentSpec(protocol="bitcoin", replicas=3, duration=10.0)
        cells = expand_grid(base, {"topology": ["full", "gossip", "ring"]})
        assert [c.topology.kind for c in cells] == ["full", "gossip", "ring"]
        assert [c.label for c in cells] == [
            "bitcoin topology=full",
            "bitcoin topology=gossip",
            "bitcoin topology=ring",
        ]

    def test_topology_param_axis(self):
        base = ExperimentSpec(
            protocol="bitcoin", topology=TopologySpec("gossip", params={"fanout": 2})
        )
        cells = expand_grid(base, {"topology.fanout": [2, 4, 8]})
        assert [c.topology.params["fanout"] for c in cells] == [2, 4, 8]
        assert all(c.topology.kind == "gossip" for c in cells)

    def test_topology_param_axis_starts_from_the_default(self):
        base = ExperimentSpec(protocol="bitcoin")
        cells = expand_grid(base, {"topology.kind": ["full", "sharded"]})
        assert [c.topology.kind for c in cells] == ["full", "sharded"]


class TestUniformVocabularyErrors:
    """Satellite: unknown names fail with one error shape, messages pinned."""

    def test_unknown_protocol(self):
        with pytest.raises(UnknownVocabularyError) as excinfo:
            ExperimentSpec(protocol="bitconnect").execute()
        message = str(excinfo.value)
        assert message.startswith("unknown protocol 'bitconnect'; registered: ")
        assert "'bitcoin'" in message and "'ethereum'" in message

    def test_unknown_channel_kind(self):
        with pytest.raises(UnknownVocabularyError) as excinfo:
            ChannelSpec(kind="quantum").build(0)
        assert str(excinfo.value) == (
            "unknown channel kind 'quantum'; registered: "
            "'asynchronous', 'partial', 'synchronous'"
        )

    def test_unknown_topology_kind(self):
        spec = ExperimentSpec(protocol="bitcoin", topology=TopologySpec("mesh2"))
        with pytest.raises(UnknownVocabularyError) as excinfo:
            spec.build_kwargs()
        assert str(excinfo.value) == (
            "unknown topology 'mesh2'; registered: 'committee', 'full', "
            "'gossip', 'random-regular', 'ring', 'sharded'"
        )

    def test_unknown_selection_and_score(self):
        spec = ExperimentSpec(protocol="bitcoin", params={"selection": "shortest"})
        with pytest.raises(UnknownVocabularyError, match="unknown selection function"):
            spec.build_kwargs()
        with pytest.raises(UnknownVocabularyError) as excinfo:
            ExperimentSpec(protocol="bitcoin", score="mass").build_score()
        assert str(excinfo.value) == (
            "unknown score function 'mass'; registered: 'length', 'weight'"
        )

    def test_unknown_merit(self):
        with pytest.raises(UnknownVocabularyError, match="unknown merit distribution"):
            WorkloadSpec(merit="pareto").build_merit(4)

    def test_error_is_both_key_and_value_error(self):
        """Historical catch sites used either type; both must keep working."""
        error = UnknownVocabularyError("protocol", "x", ("a", "b"))
        assert isinstance(error, KeyError)
        assert isinstance(error, ValueError)
        assert error.registered == ("a", "b")

    def test_empty_vocabulary_reads_none(self):
        assert str(UnknownVocabularyError("thing", "x", ())) == (
            "unknown thing 'x'; registered: (none)"
        )
