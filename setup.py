"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
fully offline environments whose pip/setuptools cannot build PEP 660
editable wheels (no ``wheel`` package available).  All metadata lives in
``pyproject.toml``.

When mypyc is available the event-core drain loop
(``repro.network._drain``) and the callback-plane hot paths
(``repro.network._hotpath``) are additionally compiled to C extensions —
both modules are written to the mypyc-friendly subset (monomorphic
locals, no closures) for exactly this.  The build degrades gracefully:
without mypyc (or if the compile fails) the pure-Python modules are the
live path, and ``repro.network.event_core.COMPILED_MODULES`` reports
per-module which flavour loaded.
"""

from setuptools import setup


def _optional_ext_modules():
    try:
        from mypyc.build import mypycify
    except ImportError:
        return []
    try:
        return mypycify(
            [
                "src/repro/network/_drain.py",
                "src/repro/network/_hotpath.py",
            ]
        )
    except Exception:
        # A broken toolchain (missing compiler, unsupported construct)
        # must not block installation of the pure-Python package.
        return []


setup(ext_modules=_optional_ext_modules())
